"""Observability: counters, wall-time spans, structured events, run manifests.

The sweep engine is the framework's hot path, and PR 1 made it parallel,
cached and resumable -- which also made it opaque: a five-minute ``fig7``
run could be simulating, waiting on a pool, or replaying a checkpoint and
the user cannot tell which.  This module is the single place the engine
reports what it is doing:

* :class:`Telemetry` -- a lightweight, thread-safe sink for **counters**
  (cache hits, failures), **spans** (wall-time of named code regions via
  ``time.perf_counter``), **value stats** (per-point latency, solver
  iterations) and bounded **structured events** (live progress with ETA).
  ``summary()`` renders the whole state as fixed-width text tables.
* :class:`NullTelemetry` / :data:`NULL` -- the disabled implementation.
  Every hook is an empty method (and :meth:`NullTelemetry.span` returns a
  shared no-op context manager), so instrumented code pays nothing
  measurable when telemetry is off.  This is the ambient default.
* **Ambient plumbing** -- :func:`get_active`, :func:`set_active` and the
  :func:`activate` context manager install one telemetry object for a
  region of code.  Deep layers (:class:`~repro.core.simulator.Simulator`,
  the FISTA solvers) report to the ambient sink without threading an
  argument through every call.  Worker *processes* start with the
  disabled default, so parallel sweeps aggregate per-point timings on the
  driver side instead (the executors return them).
* :class:`RunManifest` -- the JSON artifact a profiled run writes next to
  its outputs: seed, scale preset, grid size, per-phase timings, per-block
  power *and* time breakdowns, sweep statistics and the ETA history.

Everything here is stdlib-only (``time``, ``threading``, ``json``,
``logging``) by design: telemetry must never add a dependency, and this
module must stay importable from anywhere in the package without cycles.
"""

from __future__ import annotations

import json
import logging
import math
import platform
import sys
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path

log = logging.getLogger("repro.telemetry")

#: Version stamp of the :class:`RunManifest` JSON schema.
#: v2 added the ``robustness`` section (fault/retry/timeout accounting and
#: yield-analysis digests) and the hardened-execution counters in ``sweep``.
MANIFEST_SCHEMA_VERSION = 2


@dataclass
class Stats:
    """Streaming aggregate of one named quantity (count/total/min/max)."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the aggregate."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean observation (nan before the first one)."""
        return self.total / self.count if self.count else math.nan

    def to_dict(self) -> dict:
        """JSON-ready dict (infinities of an empty aggregate become None)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": None if not self.count else self.mean,
            "min": None if not self.count else self.min,
            "max": None if not self.count else self.max,
        }


class _Span:
    """Context manager timing one region into a :class:`Telemetry`."""

    __slots__ = ("_telemetry", "_name", "_start")

    def __init__(self, telemetry: "Telemetry", name: str):
        self._telemetry = telemetry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._telemetry._record_span(self._name, time.perf_counter() - self._start)


class _NullSpan:
    """Shared do-nothing span of the disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Thread-safe sink for counters, spans, value stats and events.

    Thread safety matters because the explorer's *thread* executor runs
    instrumented evaluators concurrently against the ambient telemetry of
    the driver; a plain dict update would race.  All mutation happens
    under one lock; reads used for reporting take the same lock and copy.

    Parameters
    ----------
    logger:
        Optional stdlib logger; every :meth:`event` is mirrored to it at
        DEBUG level, which is the bridge between structured telemetry and
        ordinary ``--log-level debug`` console logging.
    max_events:
        Bound on the retained event list.  Once full, further events are
        counted (``events_dropped`` counter) but not stored, so unbounded
        sweeps cannot grow memory without limit.
    """

    enabled = True

    def __init__(self, logger: logging.Logger | None = None, max_events: int = 10_000):
        self._lock = threading.Lock()
        self._logger = logger
        self.max_events = int(max_events)
        self.counters: dict[str, float] = {}
        self.spans: dict[str, Stats] = {}
        self.values: dict[str, Stats] = {}
        self.events: list[dict] = []

    # --- recording hooks ------------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def record(self, name: str, value: float) -> None:
        """Fold one observation of quantity ``name`` into its stats."""
        with self._lock:
            stats = self.values.get(name)
            if stats is None:
                stats = self.values[name] = Stats()
            stats.add(value)

    def span(self, name: str) -> _Span:
        """Context manager timing a region: ``with tel.span("solve"): ...``."""
        return _Span(self, name)

    def _record_span(self, name: str, elapsed_s: float) -> None:
        with self._lock:
            stats = self.spans.get(name)
            if stats is None:
                stats = self.spans[name] = Stats()
            stats.add(elapsed_s)

    def event(self, kind: str, **fields) -> None:
        """Append one structured event (bounded; see ``max_events``)."""
        payload = {"kind": kind, "t_unix": time.time(), **fields}
        with self._lock:
            if len(self.events) < self.max_events:
                self.events.append(payload)
            else:
                self.counters["telemetry.events_dropped"] = (
                    self.counters.get("telemetry.events_dropped", 0) + 1
                )
        if self._logger is not None:
            self._logger.debug("%s %s", kind, fields)

    # --- reporting ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready copy of the whole telemetry state."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "spans": {name: s.to_dict() for name, s in self.spans.items()},
                "values": {name: s.to_dict() for name, s in self.values.items()},
                "events": [dict(e) for e in self.events],
            }

    def timers(self, prefix: str = "") -> dict[str, float]:
        """Total wall seconds per span whose name starts with ``prefix``.

        The prefix is stripped from the returned keys, so
        ``timers("block.")`` maps plain block names to seconds.
        """
        with self._lock:
            return {
                name[len(prefix):]: stats.total
                for name, stats in self.spans.items()
                if name.startswith(prefix)
            }

    def summary(self) -> str:
        """Fixed-width text tables of counters, spans and value stats.

        Follows the repo's plain-text reporting conventions (compare
        ``ExplorationResult.as_table`` and :mod:`repro.util.textplot`):
        stable ordering, no colour, suitable for logs and CI artefacts.
        """
        with self._lock:
            counters = dict(self.counters)
            spans = {k: v for k, v in self.spans.items()}
            values = {k: v for k, v in self.values.items()}
            n_events = len(self.events)
        lines: list[str] = ["== telemetry summary =="]
        if counters:
            lines.append("")
            lines.append(f"{'counter':<40}{'value':>14}")
            for name in sorted(counters):
                lines.append(f"{name:<40}{counters[name]:>14g}")
        if spans:
            lines.append("")
            lines.append(
                f"{'span':<40}{'calls':>8}{'total s':>12}{'mean s':>12}"
                f"{'min s':>12}{'max s':>12}"
            )
            for name in sorted(spans):
                s = spans[name]
                lines.append(
                    f"{name:<40}{s.count:>8d}{s.total:>12.4g}{s.mean:>12.4g}"
                    f"{s.min:>12.4g}{s.max:>12.4g}"
                )
        if values:
            lines.append("")
            lines.append(
                f"{'value':<40}{'count':>8}{'total':>12}{'mean':>12}"
                f"{'min':>12}{'max':>12}"
            )
            for name in sorted(values):
                s = values[name]
                lines.append(
                    f"{name:<40}{s.count:>8d}{s.total:>12.4g}{s.mean:>12.4g}"
                    f"{s.min:>12.4g}{s.max:>12.4g}"
                )
        if n_events:
            lines.append("")
            lines.append(f"events recorded: {n_events}")
        if len(lines) == 1:
            lines.append("(nothing recorded)")
        return "\n".join(lines)


class NullTelemetry(Telemetry):
    """Disabled telemetry: every hook is a no-op.

    Instrumented code can call the hooks unconditionally -- with this
    implementation installed (the ambient default) each call is a single
    empty method invocation, which keeps the hot sweep loop at its
    pre-instrumentation cost.
    """

    enabled = False

    def count(self, name: str, amount: float = 1) -> None:
        pass

    def record(self, name: str, value: float) -> None:
        pass

    def span(self, name: str) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def event(self, kind: str, **fields) -> None:
        pass


#: The shared disabled instance; also the ambient default.
NULL = NullTelemetry()

_active: Telemetry = NULL
_active_lock = threading.Lock()


def get_active() -> Telemetry:
    """The ambient telemetry (module-global; :data:`NULL` by default)."""
    return _active


def set_active(telemetry: Telemetry | None) -> Telemetry:
    """Install ``telemetry`` (``None`` -> disabled); returns the previous one."""
    global _active
    with _active_lock:
        previous = _active
        _active = telemetry if telemetry is not None else NULL
    return previous


@contextmanager
def activate(telemetry: Telemetry | None) -> Iterator[Telemetry]:
    """Scope the ambient telemetry: ``with activate(tel): ...``.

    The ambient slot is process-global (thread-pool workers deliberately
    share it, so their solver/simulator hooks aggregate into one sink);
    nesting restores the previous sink on exit.
    """
    previous = set_active(telemetry)
    try:
        yield get_active()
    finally:
        set_active(previous)


# --- run manifest -------------------------------------------------------------


@dataclass
class RunManifest:
    """JSON artifact describing one profiled run, written next to outputs.

    The manifest is the machine-readable counterpart of
    :meth:`Telemetry.summary`: a CI job archives it, a later run compares
    against it, a human reads it to see where the wall-clock time of a
    sweep went.  All fields are plain JSON types; ``save``/``load``
    round-trip exactly.
    """

    command: str = ""
    created_unix: float = 0.0
    seed: int | None = None
    scale: str | None = None
    grid_size: int | None = None
    executor: str | None = None
    n_workers: int | None = None
    #: Per-phase wall seconds (span name -> total seconds).
    phases: dict = field(default_factory=dict)
    #: Per-block simulation wall seconds (block name -> total seconds).
    block_time_s: dict = field(default_factory=dict)
    #: Per-block power in watts of the representative optimum.
    block_power_w: dict = field(default_factory=dict)
    #: Sweep statistics: cache hits/misses, restores, failures, latency.
    sweep: dict = field(default_factory=dict)
    #: Robustness accounting: fault/retry/timeout counters and, for yield
    #: runs, the severity grid, clean references and yield curves.
    robustness: dict = field(default_factory=dict)
    #: Completion-order progress events (done/total/elapsed/ETA).
    eta_history: list = field(default_factory=list)
    environment: dict = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA_VERSION

    @staticmethod
    def describe_environment() -> dict:
        """Interpreter/platform stamp recorded into manifests."""
        try:
            import numpy

            numpy_version = numpy.__version__
        except Exception:  # pragma: no cover - numpy is a hard dependency
            numpy_version = None
        return {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "numpy": numpy_version,
        }

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output.

        Unknown keys are rejected (they indicate a newer schema); a
        missing or different ``schema`` version is rejected explicitly.
        """
        if not isinstance(payload, dict):
            raise TypeError(f"manifest payload must be a dict, got {type(payload)}")
        schema = payload.get("schema")
        if schema != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"manifest schema {schema!r} != supported {MANIFEST_SCHEMA_VERSION}"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown manifest keys: {sorted(unknown)}")
        return cls(**payload)

    def save(self, path: str | Path) -> Path:
        """Write the manifest as indented JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        """Read a manifest written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))
