"""Observability: counters, wall-time spans, structured events, run manifests.

The sweep engine is the framework's hot path, and PR 1 made it parallel,
cached and resumable -- which also made it opaque: a five-minute ``fig7``
run could be simulating, waiting on a pool, or replaying a checkpoint and
the user cannot tell which.  This module is the single place the engine
reports what it is doing:

* :class:`Telemetry` -- a lightweight, thread-safe sink for **counters**
  (cache hits, failures), **spans** (wall-time of named code regions via
  ``time.perf_counter``), **value stats** (per-point latency, solver
  iterations) and bounded **structured events** (live progress with ETA).
  ``summary()`` renders the whole state as fixed-width text tables.
* :class:`NullTelemetry` / :data:`NULL` -- the disabled implementation.
  Every hook is an empty method (and :meth:`NullTelemetry.span` returns a
  shared no-op context manager), so instrumented code pays nothing
  measurable when telemetry is off.  This is the ambient default.
* **Ambient plumbing** -- :func:`get_active`, :func:`set_active` and the
  :func:`activate` context manager install one telemetry object for a
  region of code.  Deep layers (:class:`~repro.core.simulator.Simulator`,
  the FISTA solvers) report to the ambient sink without threading an
  argument through every call.  Worker *processes* start with the
  disabled default, so parallel sweeps aggregate per-point timings on the
  driver side instead (the executors return them).
* **Cross-process aggregation** -- worker processes run a real per-worker
  :class:`Telemetry`; :meth:`Telemetry.drain_snapshot` packages its state
  as a picklable :class:`TelemetrySnapshot` delta that ships home with
  the chunk results, and the driver folds it in with the associative
  :meth:`Telemetry.merge` -- so counters, span/value stats, histograms,
  events and trace lanes from every worker land in one driver-side sink.
* :class:`RunManifest` -- the JSON artifact a profiled run writes next to
  its outputs: seed, scale preset, grid size, per-phase timings, per-block
  power *and* time breakdowns, sweep statistics, latency histograms,
  per-worker counters, the trace digest and the ETA history.

Everything here is stdlib-only (``time``, ``threading``, ``json``,
``logging``; the :mod:`repro.core.metrics` and :mod:`repro.core.tracing`
helpers it builds on are stdlib-only too) by design: telemetry must
never add a dependency, and this module must stay importable from
anywhere in the package without cycles.
"""

from __future__ import annotations

import json
import logging
import math
import platform
import sys
import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core import flight
from repro.core.metrics import Histogram

log = logging.getLogger("repro.telemetry")

#: Version stamp of the :class:`RunManifest` JSON schema.
#: v2 added the ``robustness`` section (fault/retry/timeout accounting and
#: yield-analysis digests) and the hardened-execution counters in ``sweep``.
#: v3 added ``trace`` (hierarchical-trace digest), ``workers`` (per-worker
#: counter/span totals) and ``histograms`` (fixed-bucket latency/iteration
#: distributions with p50/p95/p99), plus stddev in every stats dict.
#: v4 added ``adaptive`` (the multi-fidelity promotion ledger: per-rung
#: proposed/kept/promoted counts and the full-fidelity reduction factor).
#: v5 added ``fleet`` (the distributed-sweep report: per-worker chunk and
#: evaluator-call attribution, lease grant/expiry/requeue counts,
#: duplicate-completion drops and quarantined poison chunks).
#: v6 added ``kernels`` (the backend-dispatch record: requested kernel
#: backend, per-backend availability/exactness, and the per-kernel ledger
#: of which backend actually ran each kernel including fallbacks).
#: v7 added ``resources`` (RSS/CPU/thread sampling with per-worker
#: attribution) and the trace-merge bookkeeping in ``trace``
#: (per-lane clock offsets and dropped-event counts).
MANIFEST_SCHEMA_VERSION = 7


@dataclass
class Stats:
    """Streaming aggregate of one named quantity.

    Keeps count/total/min/max plus the Welford ``m2`` running sum of
    squared deviations, so :attr:`stddev` is available without retaining
    observations -- latency *jitter* is as diagnostic as latency mean.
    """

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    #: Welford running sum of squared deviations from the mean.
    m2: float = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the aggregate (Welford update)."""
        value = float(value)
        mean_before = self.total / self.count if self.count else 0.0
        self.count += 1
        self.total += value
        self.m2 += (value - mean_before) * (value - self.total / self.count)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean observation (nan before the first one)."""
        return self.total / self.count if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator; nan below two observations)."""
        return self.m2 / (self.count - 1) if self.count >= 2 else math.nan

    @property
    def stddev(self) -> float:
        """Sample standard deviation (nan below two observations)."""
        return math.sqrt(self.variance) if self.count >= 2 else math.nan

    def merge(self, other: "Stats") -> "Stats":
        """Fold ``other`` into this aggregate (Chan's parallel combine).

        count/total/min/max combine exactly; ``m2`` combines with the
        standard pairwise-variance formula, so merging per-worker stats
        yields the same moments as observing the union (up to float
        rounding) regardless of merge order.
        """
        if not other.count:
            return self
        if not self.count:
            self.count, self.total = other.count, other.total
            self.min, self.max, self.m2 = other.min, other.max, other.m2
            return self
        n1, n2 = self.count, other.count
        delta = other.total / n2 - self.total / n1
        self.m2 += other.m2 + delta * delta * n1 * n2 / (n1 + n2)
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def copy(self) -> "Stats":
        """Independent copy (merge mutates in place)."""
        return Stats(
            count=self.count, total=self.total, min=self.min, max=self.max, m2=self.m2
        )

    def to_dict(self) -> dict:
        """JSON-ready dict (infinities/NaNs of small aggregates become None)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": None if not self.count else self.mean,
            "min": None if not self.count else self.min,
            "max": None if not self.count else self.max,
            "stddev": None if self.count < 2 else self.stddev,
        }


class _Span:
    """Context manager timing one region into a :class:`Telemetry`.

    When the telemetry carries a :class:`~repro.core.tracing.Tracer`,
    entering also opens one trace span instance (with explicit span ID
    and the same thread's enclosing span as parent), so aggregate stats
    and the hierarchical timeline come from a single instrumentation
    point.
    """

    __slots__ = ("_telemetry", "_name", "_start", "_args", "_token")

    def __init__(self, telemetry: "Telemetry", name: str, args: dict | None = None):
        self._telemetry = telemetry
        self._name = name
        self._args = args
        self._start = 0.0
        self._token = None

    def __enter__(self) -> "_Span":
        tracer = self._telemetry.tracer
        if tracer is not None:
            self._token = tracer.start(self._name, **(self._args or {}))
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._telemetry._record_span(self._name, time.perf_counter() - self._start)
        if self._token is not None:
            self._telemetry.tracer.finish(self._token)


class _NullSpan:
    """Shared do-nothing span of the disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Thread-safe sink for counters, spans, value stats and events.

    Thread safety matters because the explorer's *thread* executor runs
    instrumented evaluators concurrently against the ambient telemetry of
    the driver; a plain dict update would race.  All mutation happens
    under one lock; reads used for reporting take the same lock and copy.

    Parameters
    ----------
    logger:
        Optional stdlib logger; every :meth:`event` is mirrored to it at
        DEBUG level, which is the bridge between structured telemetry and
        ordinary ``--log-level debug`` console logging.
    max_events:
        Bound on the retained event list.  Once full, further events are
        counted (``events_dropped`` counter) but not stored, so unbounded
        sweeps cannot grow memory without limit.
    tracer:
        Optional :class:`~repro.core.tracing.Tracer`; when attached,
        every :meth:`span` also records one hierarchical trace event and
        :meth:`instant` markers become timeline instants.
    event_sink:
        Optional callable receiving every :meth:`event` payload (e.g.
        :class:`~repro.core.metrics.JsonlEventWriter`); called outside
        the lock, and isolated -- a raising sink is logged, not raised.
    """

    enabled = True

    def __init__(
        self,
        logger: logging.Logger | None = None,
        max_events: int = 10_000,
        tracer=None,
        event_sink: Callable[[dict], None] | None = None,
    ):
        self._lock = threading.Lock()
        self._logger = logger
        self.max_events = int(max_events)
        self.tracer = tracer
        self.event_sink = event_sink
        self.counters: dict[str, float] = {}
        self.spans: dict[str, Stats] = {}
        self.values: dict[str, Stats] = {}
        self.histograms: dict[str, Histogram] = {}
        self.events: list[dict] = []
        #: Per-worker digests accumulated by :meth:`merge`:
        #: label -> {"counters": {...}, "span_seconds": {...}, "merges": n}.
        self.workers: dict[str, dict] = {}

    # --- recording hooks ------------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def record(self, name: str, value: float) -> None:
        """Fold one observation of quantity ``name`` into its stats."""
        with self._lock:
            stats = self.values.get(name)
            if stats is None:
                stats = self.values[name] = Stats()
            stats.add(value)

    def observe(self, name: str, value: float, bounds: tuple | None = None) -> None:
        """Fold one observation into the fixed-bucket histogram ``name``.

        ``bounds`` picks the bucket upper bounds on first use (default:
        the latency buckets); later calls ignore it, so every observer
        of one quantity shares one histogram.
        """
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = (
                    Histogram(bounds=bounds) if bounds is not None else Histogram()
                )
            histogram.observe(value)

    def span(self, name: str, **args) -> _Span:
        """Context manager timing a region: ``with tel.span("solve"): ...``.

        ``args`` annotate the trace event (ignored without a tracer):
        ``tel.span("explore.point", index=i)``.
        """
        return _Span(self, name, args or None)

    def _record_span(self, name: str, elapsed_s: float) -> None:
        with self._lock:
            stats = self.spans.get(name)
            if stats is None:
                stats = self.spans[name] = Stats()
            stats.add(elapsed_s)

    def instant(self, name: str, **args) -> None:
        """Mark a zero-duration timeline occurrence (cache hit, restore).

        A no-op without an attached tracer: instants exist for the
        timeline, the corresponding counters carry the aggregates.
        """
        if self.tracer is not None:
            self.tracer.instant(name, **args)

    def event(self, kind: str, **fields) -> None:
        """Append one structured event (bounded; see ``max_events``).

        Every event is also filed on the crash flight-recorder ring
        (:mod:`repro.core.flight`), so a postmortem dump carries the
        recent structured trail regardless of sinks.
        """
        payload = {"kind": kind, "t_unix": time.time(), **fields}
        with self._lock:
            if len(self.events) < self.max_events:
                self.events.append(payload)
            else:
                self.counters["telemetry.events_dropped"] = (
                    self.counters.get("telemetry.events_dropped", 0) + 1
                )
        flight.get_recorder().note(payload)
        if self.event_sink is not None:
            try:
                self.event_sink(payload)
            except Exception:  # noqa: BLE001 - a sink must never kill the run
                log.warning("telemetry event sink raised", exc_info=True)
        if self._logger is not None:
            self._logger.debug("%s %s", kind, fields)

    # --- snapshots and merging ------------------------------------------------

    def to_snapshot(self, label: str = "", drain: bool = False) -> "TelemetrySnapshot":
        """Picklable copy of the full state (see :class:`TelemetrySnapshot`).

        ``drain=True`` atomically resets the state after copying -- the
        worker-side discipline: each chunk ships a *delta* home, so the
        driver's :meth:`merge` sums to exactly the union of all worker
        activity, however many chunks each worker ran.
        """
        with self._lock:
            snapshot = TelemetrySnapshot(
                label=label,
                counters=dict(self.counters),
                spans={name: s.copy() for name, s in self.spans.items()},
                values={name: s.copy() for name, s in self.values.items()},
                histograms={name: h.copy() for name, h in self.histograms.items()},
                events=[dict(e) for e in self.events],
                max_events=self.max_events,
            )
            if drain:
                self.counters = {}
                self.spans = {}
                self.values = {}
                self.histograms = {}
                self.events = []
        if self.tracer is not None:
            snapshot.trace = self.tracer.snapshot(drain=drain)
        return snapshot

    def drain_snapshot(self, label: str = "") -> "TelemetrySnapshot":
        """:meth:`to_snapshot` with ``drain=True`` (the worker-side call)."""
        return self.to_snapshot(label=label, drain=True)

    def merge(self, snapshot: "TelemetrySnapshot", worker: str | None = None) -> None:
        """Fold a :class:`TelemetrySnapshot` into this telemetry.

        Associative and commutative on the aggregates: counters add,
        span/value stats combine via :meth:`Stats.merge`, histograms sum
        bucket-wise, events append (bounded, drops counted), and trace
        events file under their original process lane.  ``worker``
        (default: the snapshot's label) additionally accumulates the
        snapshot's counters and span totals into :attr:`workers`, the
        per-worker attribution the run manifest reports.
        """
        label = worker if worker is not None else snapshot.label
        with self._lock:
            for name, amount in snapshot.counters.items():
                self.counters[name] = self.counters.get(name, 0) + amount
            for name, stats in snapshot.spans.items():
                mine = self.spans.get(name)
                if mine is None:
                    self.spans[name] = stats.copy()
                else:
                    mine.merge(stats)
            for name, stats in snapshot.values.items():
                mine = self.values.get(name)
                if mine is None:
                    self.values[name] = stats.copy()
                else:
                    mine.merge(stats)
            for name, histogram in snapshot.histograms.items():
                mine = self.histograms.get(name)
                if mine is None:
                    self.histograms[name] = histogram.copy()
                else:
                    mine.merge(histogram)
            for payload in snapshot.events:
                if len(self.events) < self.max_events:
                    self.events.append(dict(payload))
                else:
                    self.counters["telemetry.events_dropped"] = (
                        self.counters.get("telemetry.events_dropped", 0) + 1
                    )
            if label:
                digest = self.workers.setdefault(
                    label, {"counters": {}, "span_seconds": {}, "merges": 0}
                )
                digest["merges"] += 1
                for name, amount in snapshot.counters.items():
                    digest["counters"][name] = digest["counters"].get(name, 0) + amount
                for name, stats in snapshot.spans.items():
                    digest["span_seconds"][name] = (
                        digest["span_seconds"].get(name, 0.0) + stats.total
                    )
                for name, stats in snapshot.values.items():
                    # Resource samples keep per-worker attribution: a fleet
                    # manifest can name the worker that was swapping.
                    if not name.startswith("resources.") or not stats.count:
                        continue
                    entry = digest.setdefault("resources", {}).setdefault(
                        name, {"count": 0, "mean": 0.0, "max": -math.inf}
                    )
                    total = entry["mean"] * entry["count"] + stats.total
                    entry["count"] += stats.count
                    entry["mean"] = total / entry["count"]
                    entry["max"] = max(entry["max"], stats.max)
        if self.tracer is not None and snapshot.trace is not None:
            self.tracer.absorb(snapshot.trace)

    # --- reporting ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready copy of the whole telemetry state."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "spans": {name: s.to_dict() for name, s in self.spans.items()},
                "values": {name: s.to_dict() for name, s in self.values.items()},
                "histograms": {
                    name: h.to_dict() for name, h in self.histograms.items()
                },
                "events": [dict(e) for e in self.events],
                "workers": {
                    label: {
                        "counters": dict(digest["counters"]),
                        "span_seconds": dict(digest["span_seconds"]),
                        "merges": digest["merges"],
                        **(
                            {
                                "resources": {
                                    name: dict(entry)
                                    for name, entry in digest["resources"].items()
                                }
                            }
                            if digest.get("resources")
                            else {}
                        ),
                    }
                    for label, digest in self.workers.items()
                },
            }

    def timers(self, prefix: str = "") -> dict[str, float]:
        """Total wall seconds per span whose name starts with ``prefix``.

        The prefix is stripped from the returned keys, so
        ``timers("block.")`` maps plain block names to seconds.
        """
        with self._lock:
            return {
                name[len(prefix):]: stats.total
                for name, stats in self.spans.items()
                if name.startswith(prefix)
            }

    def summary(self) -> str:
        """Fixed-width text tables of counters, spans and value stats.

        Follows the repo's plain-text reporting conventions (compare
        ``ExplorationResult.as_table`` and :mod:`repro.util.textplot`):
        stable ordering, no colour, suitable for logs and CI artefacts.
        """
        with self._lock:
            counters = dict(self.counters)
            spans = {k: v for k, v in self.spans.items()}
            values = {k: v for k, v in self.values.items()}
            histograms = {k: v for k, v in self.histograms.items()}
            workers = sorted(self.workers)
            n_events = len(self.events)
            max_events = self.max_events
        lines: list[str] = ["== telemetry summary =="]
        dropped = counters.get("telemetry.events_dropped", 0)
        if dropped:
            # Surfaced first and loudly: silently truncated event trails
            # have repeatedly masked the interesting end of long sweeps.
            lines.append(
                f"WARNING: {dropped:g} event(s) dropped -- the bounded buffer "
                f"filled at max_events={max_events}; construct "
                f"Telemetry(max_events=<larger>) to keep the full trail"
            )
        if counters:
            lines.append("")
            lines.append(f"{'counter':<40}{'value':>14}")
            for name in sorted(counters):
                lines.append(f"{name:<40}{counters[name]:>14g}")

        def _stats_table(title: str, table: dict[str, Stats]) -> None:
            lines.append("")
            lines.append(
                f"{title:<40}{'count':>8}{'total':>12}{'mean':>12}"
                f"{'stddev':>12}{'min':>12}{'max':>12}"
            )
            for name in sorted(table):
                s = table[name]
                lines.append(
                    f"{name:<40}{s.count:>8d}{s.total:>12.4g}{s.mean:>12.4g}"
                    f"{s.stddev:>12.4g}{s.min:>12.4g}{s.max:>12.4g}"
                )
        if spans:
            _stats_table("span [s]", spans)
        if values:
            _stats_table("value", values)
        if histograms:
            lines.append("")
            lines.append(
                f"{'histogram':<40}{'count':>8}{'p50':>12}{'p95':>12}{'p99':>12}"
            )
            for name in sorted(histograms):
                h = histograms[name]
                lines.append(
                    f"{name:<40}{h.count:>8d}{h.quantile(0.5):>12.4g}"
                    f"{h.quantile(0.95):>12.4g}{h.quantile(0.99):>12.4g}"
                )
        if workers:
            lines.append("")
            lines.append(f"worker lanes merged: {', '.join(workers)}")
        if n_events:
            lines.append("")
            lines.append(f"events recorded: {n_events}")
        if len(lines) == 1:
            lines.append("(nothing recorded)")
        return "\n".join(lines)


@dataclass
class TelemetrySnapshot:
    """Picklable state delta of one :class:`Telemetry`.

    This is the payload worker processes ship back with their chunk
    results: plain dataclasses (:class:`Stats`,
    :class:`~repro.core.metrics.Histogram`) and plain dicts, so it
    pickles across a process pool without dragging locks, loggers or
    file handles along.  ``trace`` is a
    :meth:`~repro.core.tracing.Tracer.snapshot` payload (or ``None``
    when the worker ran without tracing).
    """

    label: str = ""
    counters: dict = field(default_factory=dict)
    spans: dict = field(default_factory=dict)
    values: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    trace: dict | None = None
    max_events: int = 0

    def to_wire(self) -> dict:
        """Lossless JSON-ready form for non-pickle transports.

        The process-pool path ships snapshots by pickle; the fleet
        protocol ships them as JSON lines over a socket.  This encoding
        keeps the *raw* aggregate fields (``m2``, bucket counts) rather
        than the derived summaries of :meth:`Stats.to_dict`, so
        :meth:`from_wire` rebuilds a snapshot that merges exactly like
        the original.  Infinities (empty-aggregate min/max sentinels)
        are encoded as ``None`` to stay inside strict JSON.
        """

        def _stats(s: Stats) -> dict:
            return {
                "count": s.count,
                "total": s.total,
                "min": None if math.isinf(s.min) else s.min,
                "max": None if math.isinf(s.max) else s.max,
                "m2": s.m2,
            }

        def _histogram(h: Histogram) -> dict:
            return {
                "bounds": list(h.bounds),
                "counts": list(h.counts),
                "count": h.count,
                "total": h.total,
                "min": None if math.isinf(h.min) else h.min,
                "max": None if math.isinf(h.max) else h.max,
            }

        return {
            "label": self.label,
            "counters": dict(self.counters),
            "spans": {name: _stats(s) for name, s in self.spans.items()},
            "values": {name: _stats(s) for name, s in self.values.items()},
            "histograms": {
                name: _histogram(h) for name, h in self.histograms.items()
            },
            "events": [dict(e) for e in self.events],
            "trace": self.trace,
            "max_events": self.max_events,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "TelemetrySnapshot":
        """Rebuild a snapshot from :meth:`to_wire` output."""

        def _stats(raw: dict) -> Stats:
            return Stats(
                count=int(raw["count"]),
                total=float(raw["total"]),
                min=math.inf if raw["min"] is None else float(raw["min"]),
                max=-math.inf if raw["max"] is None else float(raw["max"]),
                m2=float(raw["m2"]),
            )

        def _histogram(raw: dict) -> Histogram:
            histogram = Histogram(
                bounds=tuple(raw["bounds"]), counts=[int(c) for c in raw["counts"]]
            )
            histogram.count = int(raw["count"])
            histogram.total = float(raw["total"])
            histogram.min = math.inf if raw["min"] is None else float(raw["min"])
            histogram.max = -math.inf if raw["max"] is None else float(raw["max"])
            return histogram

        return cls(
            label=str(payload.get("label", "")),
            counters=dict(payload.get("counters", {})),
            spans={n: _stats(s) for n, s in payload.get("spans", {}).items()},
            values={n: _stats(s) for n, s in payload.get("values", {}).items()},
            histograms={
                n: _histogram(h) for n, h in payload.get("histograms", {}).items()
            },
            events=[dict(e) for e in payload.get("events", [])],
            trace=payload.get("trace"),
            max_events=int(payload.get("max_events", 0)),
        )


class NullTelemetry(Telemetry):
    """Disabled telemetry: every hook is a no-op.

    Instrumented code can call the hooks unconditionally -- with this
    implementation installed (the ambient default) each call is a single
    empty method invocation, which keeps the hot sweep loop at its
    pre-instrumentation cost.
    """

    enabled = False

    def count(self, name: str, amount: float = 1) -> None:
        pass

    def record(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float, bounds: tuple | None = None) -> None:
        pass

    def span(self, name: str, **args) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def instant(self, name: str, **args) -> None:
        pass

    def event(self, kind: str, **fields) -> None:
        pass


#: The shared disabled instance; also the ambient default.
NULL = NullTelemetry()

_active: Telemetry = NULL
_active_lock = threading.Lock()


def get_active() -> Telemetry:
    """The ambient telemetry (module-global; :data:`NULL` by default)."""
    return _active


def set_active(telemetry: Telemetry | None) -> Telemetry:
    """Install ``telemetry`` (``None`` -> disabled); returns the previous one."""
    global _active
    with _active_lock:
        previous = _active
        _active = telemetry if telemetry is not None else NULL
    return previous


@contextmanager
def activate(telemetry: Telemetry | None) -> Iterator[Telemetry]:
    """Scope the ambient telemetry: ``with activate(tel): ...``.

    The ambient slot is process-global (thread-pool workers deliberately
    share it, so their solver/simulator hooks aggregate into one sink);
    nesting restores the previous sink on exit.
    """
    previous = set_active(telemetry)
    try:
        yield get_active()
    finally:
        set_active(previous)


# --- run manifest -------------------------------------------------------------


@dataclass
class RunManifest:
    """JSON artifact describing one profiled run, written next to outputs.

    The manifest is the machine-readable counterpart of
    :meth:`Telemetry.summary`: a CI job archives it, a later run compares
    against it, a human reads it to see where the wall-clock time of a
    sweep went.  All fields are plain JSON types; ``save``/``load``
    round-trip exactly.
    """

    command: str = ""
    created_unix: float = 0.0
    seed: int | None = None
    scale: str | None = None
    grid_size: int | None = None
    executor: str | None = None
    n_workers: int | None = None
    #: Per-phase wall seconds (span name -> total seconds).
    phases: dict = field(default_factory=dict)
    #: Per-block simulation wall seconds (block name -> total seconds).
    block_time_s: dict = field(default_factory=dict)
    #: Per-block power in watts of the representative optimum.
    block_power_w: dict = field(default_factory=dict)
    #: Sweep statistics: cache hits/misses, restores, failures, latency.
    sweep: dict = field(default_factory=dict)
    #: Robustness accounting: fault/retry/timeout counters and, for yield
    #: runs, the severity grid, clean references and yield curves.
    robustness: dict = field(default_factory=dict)
    #: Hierarchical-trace digest: event/drop counts, the pid -> label
    #: lane table, and the trace-merge bookkeeping (per-lane clock
    #: offsets and dropped-event counts); trace bodies live in the
    #: ``--trace`` JSON file.
    trace: dict = field(default_factory=dict)
    #: Resource-sampling digest (:func:`repro.core.resources.
    #: resources_section`): RSS/CPU/thread histograms and value stats,
    #: plus the per-worker resource attribution; empty when sampling
    #: never ran.
    resources: dict = field(default_factory=dict)
    #: Per-worker attribution: label -> counters and span-second totals
    #: merged from that worker's telemetry snapshots.
    workers: dict = field(default_factory=dict)
    #: Fixed-bucket latency/iteration histograms (bucket counts + p50/95/99).
    histograms: dict = field(default_factory=dict)
    #: Adaptive-exploration promotion ledger
    #: (:meth:`repro.core.adaptive.PromotionLedger.to_dict`); empty for
    #: exhaustive sweeps.
    adaptive: dict = field(default_factory=dict)
    #: Distributed-sweep report (:meth:`repro.fleet.FleetReport.to_dict`):
    #: per-worker attribution, lease/requeue/duplicate accounting and
    #: quarantined poison chunks; empty for single-host runs.
    fleet: dict = field(default_factory=dict)
    #: Kernel-dispatch record (:meth:`repro.kernels.KernelRegistry.
    #: manifest_section`): requested backend, per-backend availability
    #: and exactness contract, and the per-kernel ledger of which
    #: backend actually ran (fallbacks attributed with a reason).
    kernels: dict = field(default_factory=dict)
    #: Completion-order progress events (done/total/elapsed/ETA).
    eta_history: list = field(default_factory=list)
    environment: dict = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA_VERSION

    @staticmethod
    def describe_environment() -> dict:
        """Interpreter/platform stamp recorded into manifests."""
        try:
            import numpy

            numpy_version = numpy.__version__
        except Exception:  # pragma: no cover - numpy is a hard dependency
            numpy_version = None
        return {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "numpy": numpy_version,
        }

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output.

        Unknown keys are rejected (they indicate a newer schema); a
        missing or different ``schema`` version is rejected explicitly.
        """
        if not isinstance(payload, dict):
            raise TypeError(f"manifest payload must be a dict, got {type(payload)}")
        schema = payload.get("schema")
        if schema != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"manifest schema {schema!r} != supported {MANIFEST_SCHEMA_VERSION}"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown manifest keys: {sorted(unknown)}")
        return cls(**payload)

    def save(self, path: str | Path) -> Path:
        """Write the manifest as indented JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        """Read a manifest written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))
