"""Signal container flowing between blocks of the simulation engine.

A :class:`Signal` is an immutable-by-convention wrapper around a numpy
array plus the sampling metadata blocks need to interpret it: sample rate,
domain (continuous-valued analog samples, digitised codes-as-volts, or
compressed CS measurements) and a free-form annotations dict that blocks
use to pass side information down the chain (e.g. the effective sensing
matrix from the encoder to the reconstructor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.util.validation import check_positive

#: Allowed signal domains.
DOMAINS = ("analog", "digital", "compressed")


@dataclass
class Signal:
    """One named sample stream.

    Attributes
    ----------
    data:
        Sample array.  1-D for plain streams; the CS encoder emits 2-D
        (n_frames, M) measurement blocks.
    sample_rate:
        Samples per second of the stream (for 2-D data: frames per second
        times M is the scalar measurement rate; ``sample_rate`` stores the
        scalar rate so power/bit-rate bookkeeping stays uniform).
    domain:
        One of :data:`DOMAINS`.
    annotations:
        Side-channel metadata accumulated along the chain.
    """

    data: np.ndarray
    sample_rate: float
    domain: str = "analog"
    annotations: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float64)
        check_positive("sample_rate", self.sample_rate)
        if self.domain not in DOMAINS:
            raise ValueError(f"domain must be one of {DOMAINS}, got {self.domain!r}")

    @property
    def n_samples(self) -> int:
        """Total number of scalar samples."""
        return int(self.data.size)

    @property
    def duration(self) -> float:
        """Stream duration in seconds."""
        return self.n_samples / self.sample_rate

    def replaced(
        self,
        data: np.ndarray | None = None,
        sample_rate: float | None = None,
        domain: str | None = None,
        **annotations: Any,
    ) -> "Signal":
        """Return a copy with selected fields replaced and annotations merged.

        The annotations of the source signal are carried over; keyword
        arguments add or overwrite entries.  This is the one constructor
        blocks should use so that metadata survives the chain.
        """
        merged = dict(self.annotations)
        merged.update(annotations)
        return Signal(
            data=self.data if data is None else data,
            sample_rate=self.sample_rate if sample_rate is None else sample_rate,
            domain=self.domain if domain is None else domain,
            annotations=merged,
        )

    def rms(self) -> float:
        """Root-mean-square value of the stream."""
        return float(np.sqrt(np.mean(np.square(self.data))))

    def peak(self) -> float:
        """Maximum absolute sample value."""
        return float(np.max(np.abs(self.data))) if self.data.size else 0.0

    def time_axis(self) -> np.ndarray:
        """Time stamps of a 1-D stream, in seconds."""
        if self.data.ndim != 1:
            raise ValueError("time_axis is only defined for 1-D streams")
        return np.arange(self.data.size) / self.sample_rate
