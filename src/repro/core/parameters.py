"""Design-space parameterisation (the sweep engine of Step 5).

A :class:`ParameterSpace` maps parameter names to candidate values and
enumerates the Cartesian grid (or a random subsample) as
:class:`~repro.power.technology.DesignPoint` instances.  Parameter names
are DesignPoint field names, so a space is fully declarative::

    space = ParameterSpace({
        "lna_noise_rms": np.linspace(1e-6, 20e-6, 10),
        "n_bits": [6, 7, 8],
        "cs_m": [75, 150, 192],
        "use_cs": [True],
    })
    for point in space.grid(base=DesignPoint()):
        ...
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Mapping, Sequence

import numpy as np

from repro.power.technology import DesignPoint
from repro.util.rng import make_rng
from repro.util.validation import check_positive_int

#: Fields of DesignPoint a space may sweep.
SWEEPABLE_FIELDS = frozenset(
    {
        "bw_in",
        "n_bits",
        "v_dd",
        "v_fs",
        "v_ref",
        "lna_noise_rms",
        "lna_gain",
        "use_cs",
        "cs_architecture",
        "cs_m",
        "cs_n_phi",
        "cs_sparsity",
        "cs_cap_ratio",
        "cs_weight_mismatch_sigma",
        "sampling_ratio",
        "lna_bw_ratio",
    }
)


class ParameterSpace:
    """A named grid of design-parameter values."""

    def __init__(self, axes: Mapping[str, Sequence]):
        if not axes:
            raise ValueError("parameter space needs at least one axis")
        self._axes: dict[str, list] = {}
        for name, values in axes.items():
            if name not in SWEEPABLE_FIELDS:
                raise ValueError(
                    f"{name!r} is not a sweepable DesignPoint field; "
                    f"allowed: {sorted(SWEEPABLE_FIELDS)}"
                )
            values = list(np.asarray(values).tolist()) if not isinstance(values, list) else list(values)
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            self._axes[name] = values

    @property
    def axes(self) -> dict[str, list]:
        """Name -> candidate values (copy)."""
        return {name: list(values) for name, values in self._axes.items()}

    @property
    def size(self) -> int:
        """Number of grid points."""
        total = 1
        for values in self._axes.values():
            total *= len(values)
        return total

    def assignments(self) -> Iterator[dict]:
        """Iterate raw {name: value} grid assignments in axis order."""
        names = list(self._axes)
        for combo in itertools.product(*(self._axes[name] for name in names)):
            yield dict(zip(names, combo))

    def grid(self, base: DesignPoint | None = None) -> Iterator[DesignPoint]:
        """Iterate the full grid as DesignPoints derived from ``base``.

        Assignments that violate DesignPoint invariants (e.g. a CS
        sparsity larger than M on a non-CS axis combination) are skipped
        rather than raised, so mixed baseline/CS spaces compose naturally.
        """
        base = base or DesignPoint()
        for assignment in self.assignments():
            try:
                yield base.with_(**assignment)
            except ValueError:
                continue

    def random(
        self, n_points: int, base: DesignPoint | None = None, seed: int | None = None
    ) -> list[DesignPoint]:
        """``n_points`` uniform random grid picks (without replacement when
        the grid is small enough)."""
        n_points = check_positive_int("n_points", n_points)
        rng = make_rng(seed)
        all_points = list(self.grid(base))
        if not all_points:
            raise ValueError("parameter space produced no valid design points")
        if n_points >= len(all_points):
            return all_points
        indices = rng.choice(len(all_points), size=n_points, replace=False)
        return [all_points[i] for i in sorted(indices)]

    def __or__(self, other: "ParameterSpace") -> "CompositeSpace":
        """Union of two spaces (e.g. a baseline grid plus a CS grid)."""
        return CompositeSpace([self, other])

    def __repr__(self) -> str:
        dims = ", ".join(f"{name}[{len(values)}]" for name, values in self._axes.items())
        return f"ParameterSpace({dims}; {self.size} points)"


class CompositeSpace:
    """Concatenation of several parameter spaces (grids are chained).

    The paper's Fig. 7 search space is exactly this: a baseline grid
    (noise x resolution) unioned with a CS grid (noise x resolution x M).
    """

    def __init__(self, spaces: Sequence[ParameterSpace]):
        if not spaces:
            raise ValueError("composite space needs at least one member")
        self.spaces = list(spaces)

    @property
    def size(self) -> int:
        """Total grid points across members."""
        return sum(space.size for space in self.spaces)

    def grid(self, base: DesignPoint | None = None) -> Iterator[DesignPoint]:
        """Chain the member grids."""
        for space in self.spaces:
            yield from space.grid(base)

    def __or__(self, other: "ParameterSpace | CompositeSpace") -> "CompositeSpace":
        others = other.spaces if isinstance(other, CompositeSpace) else [other]
        return CompositeSpace([*self.spaces, *others])

    def __repr__(self) -> str:
        return f"CompositeSpace({len(self.spaces)} members, {self.size} points)"
