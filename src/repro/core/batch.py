"""Batched design-point evaluation: one vectorised pass over many points.

The scalar sweep path walks every design point through its chain one
block at a time over one sample stream, so NumPy dispatch overhead (and
per-point Python bookkeeping: chain construction, filter design, RNG
derivation) dominates small-signal sweeps.  This module adds the batched
path the ROADMAP's "as fast as the hardware allows" goal asks for:

* :class:`BatchSignal` -- a stack of per-point sample streams, shape
  ``(n_points, *stream_shape)``, with per-row sample rates, domains and
  annotation dicts.  The batched analogue of
  :class:`~repro.core.signal.Signal`.
* :class:`BatchCompiler` -- builds every point's chain through the
  evaluator (so seeding, fault transforms and validation are identical
  to the scalar path) and groups points whose chains share a *topology*
  (same block types, same batch-relevant shapes) into parameter-stacked
  batches.  Chains containing any block without a ``process_batch``
  kernel -- fault-wrapped chains, custom user blocks -- are handed back
  for transparent scalar fallback.
* :class:`BatchedEvaluator` -- runs each compiled group through the
  blocks' ``process_batch`` kernels in one vectorised pass and scatters
  the per-point results back as ordinary
  :class:`~repro.core.results.Evaluation` rows, so the explorer's cache,
  checkpoint and telemetry machinery is reused unchanged.

Batch kernel contract
---------------------

``process_batch(batch, peers, ctxs) -> BatchSignal`` receives the batch
signal, the per-point block instances occupying this chain position
(``peers[i]`` belongs to point ``i``; ``peers[0] is self``) and the
per-point simulation contexts.  A kernel MUST reproduce the scalar
``process`` bit-for-bit per row, which pins down its RNG discipline:
call ``ctxs[i].rng(self.name)`` exactly as often as the scalar path does
(once per block invocation, reused across that block's draws) and issue
identical draw shapes in identical order.  Blocks whose grouped
parameters change array shapes (ADC bit depth, CS matrix dimensions)
declare them via ``batch_group_key()`` so the compiler never stacks
incompatible instances.

Evaluator protocol
------------------

Batching needs more than the ``evaluator(point) -> Evaluation`` callable
the explorer requires: the evaluator must expose ``build_point_chain``,
``source_signal`` and ``score_output`` (see
:class:`~repro.core.explorer.FrontEndEvaluator`).  Evaluators without
the protocol degrade to the scalar path, point by point, so
``executor="batched"`` is always safe to request.
"""

from __future__ import annotations

import logging
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any, NamedTuple

import numpy as np

from repro.core.block import SimulationContext
from repro.core.execution import (
    DEFAULT_POLICY,
    ExecutionPolicy,
    _call_with_timeout,
    evaluate_one_timed,
)
from repro.core.results import Evaluation
from repro.core.signal import Signal
from repro.core.simulator import collect_power
from repro.core.telemetry import get_active
from repro.power.technology import DesignPoint

log = logging.getLogger("repro.batch")

#: Methods an evaluator must expose for the batched fast path.
BATCH_EVALUATOR_PROTOCOL = ("build_point_chain", "source_signal", "score_output")

#: Default ceiling on points per vectorised group (bounds peak memory:
#: every kernel materialises a few (n_points, n_samples) temporaries).
DEFAULT_MAX_GROUP_POINTS = 32


def supports_batching(evaluator: object) -> bool:
    """Whether ``evaluator`` implements the batch protocol."""
    return all(callable(getattr(evaluator, name, None)) for name in BATCH_EVALUATOR_PROTOCOL)


@dataclass
class BatchSignal:
    """A stack of per-point sample streams flowing through batch kernels.

    Attributes
    ----------
    data:
        Stacked sample arrays, shape ``(n_points, *stream_shape)``; row
        ``i`` is point ``i``'s stream.  Kernels must treat it as
        read-only and build their output out-of-place (mirroring the
        scalar ``process`` contract).
    sample_rates:
        Per-row scalar sample rate, shape ``(n_points,)``.
    domains:
        Per-row signal domain (see :data:`repro.core.signal.DOMAINS`).
    annotations:
        Per-row annotation dicts (side-channel metadata, e.g. each
        point's ``lna_gain`` or effective sensing matrix).
    """

    data: np.ndarray
    sample_rates: np.ndarray
    domains: list[str]
    annotations: list[dict[str, Any]]

    def __post_init__(self) -> None:
        self.sample_rates = np.asarray(self.sample_rates, dtype=np.float64)
        n = len(self.data)
        if not (len(self.sample_rates) == len(self.domains) == len(self.annotations) == n):
            raise ValueError(
                f"inconsistent batch: {n} data rows, {len(self.sample_rates)} rates, "
                f"{len(self.domains)} domains, {len(self.annotations)} annotation dicts"
            )

    @property
    def n_points(self) -> int:
        """Number of stacked streams."""
        return len(self.data)

    @classmethod
    def from_signals(cls, signals: Sequence[Signal]) -> "BatchSignal":
        """Stack per-point signals (must share one data shape)."""
        if not signals:
            raise ValueError("cannot batch zero signals")
        shapes = {s.data.shape for s in signals}
        if len(shapes) != 1:
            raise ValueError(f"cannot stack heterogeneous shapes: {sorted(shapes)}")
        return cls(
            data=np.stack([s.data for s in signals]),
            sample_rates=np.array([s.sample_rate for s in signals]),
            domains=[s.domain for s in signals],
            annotations=[dict(s.annotations) for s in signals],
        )

    @classmethod
    def broadcast(cls, signal: Signal, n_points: int) -> "BatchSignal":
        """Batch with every row viewing ``signal`` (no data copy).

        The rows share one read-only buffer; the first out-of-place
        kernel materialises per-row arrays.  An in-place write by a
        misbehaving kernel raises instead of silently corrupting peers.
        """
        data = np.broadcast_to(signal.data, (n_points,) + signal.data.shape)
        return cls(
            data=data,
            sample_rates=np.full(n_points, signal.sample_rate),
            domains=[signal.domain] * n_points,
            annotations=[dict(signal.annotations) for _ in range(n_points)],
        )

    def row(self, i: int) -> Signal:
        """Point ``i``'s stream as an ordinary :class:`Signal`."""
        return Signal(
            data=np.asarray(self.data[i]),
            sample_rate=float(self.sample_rates[i]),
            domain=self.domains[i],
            annotations=dict(self.annotations[i]),
        )

    def to_signals(self) -> list[Signal]:
        """All rows as ordinary signals."""
        return [self.row(i) for i in range(self.n_points)]

    def replaced(
        self,
        data: np.ndarray | None = None,
        sample_rates: np.ndarray | None = None,
        domain: str | None = None,
        row_annotations: Sequence[dict[str, Any]] | None = None,
    ) -> "BatchSignal":
        """Copy with selected fields replaced; annotations merge per row.

        The batched analogue of :meth:`Signal.replaced`:
        ``row_annotations[i]`` (when given) is merged over row ``i``'s
        existing annotations, so metadata survives the chain.
        """
        if row_annotations is None:
            merged = [dict(a) for a in self.annotations]
        else:
            if len(row_annotations) != self.n_points:
                raise ValueError(
                    f"{len(row_annotations)} annotation dicts for {self.n_points} rows"
                )
            merged = [
                {**old, **new} for old, new in zip(self.annotations, row_annotations)
            ]
        return BatchSignal(
            data=self.data if data is None else data,
            sample_rates=self.sample_rates if sample_rates is None else sample_rates,
            domains=list(self.domains) if domain is None else [domain] * self.n_points,
            annotations=merged,
        )


@dataclass
class CompiledPoint:
    """One design point with its freshly built chain, ready to batch."""

    index: int
    point: DesignPoint
    chain: Any
    run_seed: int


@dataclass
class CompiledBatch:
    """A topology-sharing group of compiled points."""

    key: tuple
    members: list[CompiledPoint] = field(default_factory=list)


class FallbackPoint(NamedTuple):
    """One point demoted to the scalar path, with the attributed cause.

    ``reason`` is a ``category:detail`` string -- e.g.
    ``no_batch_kernel:FaultyChain``, ``chain_build_error:ValueError``,
    ``group_failure:RuntimeError`` -- so sweeps can report *which* block
    class or failure mode forced scalar demotion, not just how many
    points were demoted.
    """

    index: int
    point: DesignPoint
    reason: str


class BatchCompiler:
    """Groups sweep points into parameter-stacked, topology-sharing batches.

    Chains are built through the evaluator's ``build_point_chain`` so the
    batched path inherits the scalar path's validation, seeding and fault
    transforms exactly.  Two points land in the same group when their
    chains agree position-by-position on block *type* and on the block's
    ``batch_group_key()`` (shape-determining parameters: ADC bit depth,
    CS matrix dimensions).  A chain containing any block without a
    ``process_batch`` kernel is returned in the fallback list instead --
    which is how fault-wrapped chains transparently stay on the scalar
    path.
    """

    def __init__(self, evaluator: object):
        if not supports_batching(evaluator):
            raise TypeError(
                f"{type(evaluator).__name__} does not implement the batch evaluator "
                f"protocol {BATCH_EVALUATOR_PROTOCOL}"
            )
        self.evaluator = evaluator

    @staticmethod
    def chain_key(chain: Any) -> tuple | None:
        """Topology key of ``chain``, or ``None`` when it cannot batch."""
        blocks = getattr(chain, "blocks", None)
        if not blocks:
            return None
        parts = []
        for block in blocks:
            if not callable(getattr(block, "process_batch", None)):
                return None
            group_key = getattr(block, "batch_group_key", None)
            parts.append(
                (type(block).__qualname__, group_key() if callable(group_key) else None)
            )
        return tuple(parts)

    @staticmethod
    def demotion_reason(chain: Any) -> str | None:
        """Why ``chain`` cannot batch (``None`` when it can).

        Names every distinct block class in the chain that lacks a
        ``process_batch`` kernel -- the attribution a sweep report needs
        to say "these 40 points fell back because of ``FaultyChain``".
        """
        blocks = getattr(chain, "blocks", None)
        if not blocks:
            return f"no_blocks:{type(chain).__qualname__}"
        missing = dict.fromkeys(
            type(block).__qualname__
            for block in blocks
            if not callable(getattr(block, "process_batch", None))
        )
        if missing:
            return "no_batch_kernel:" + ",".join(missing)
        return None

    def compile(
        self, pending: Sequence[tuple[int, DesignPoint]]
    ) -> tuple[list[CompiledBatch], list[FallbackPoint]]:
        """Partition ``pending`` into vectorisable groups + scalar fallback.

        Points whose chain *construction* raises are also routed to the
        scalar path, so the error surfaces with the scalar path's exact
        message and strict/isolation semantics.  Every
        :class:`FallbackPoint` carries the attributed demotion reason.
        """
        groups: dict[tuple, CompiledBatch] = {}
        fallback: list[FallbackPoint] = []
        for index, point in pending:
            try:
                chain, run_seed = self.evaluator.build_point_chain(point)
                key = self.chain_key(chain)
            except Exception as error:
                fallback.append(
                    FallbackPoint(
                        index, point, f"chain_build_error:{type(error).__name__}"
                    )
                )
                continue
            if key is None:
                reason = self.demotion_reason(chain) or "unbatchable_chain"
                fallback.append(FallbackPoint(index, point, reason))
                continue
            group = groups.setdefault(key, CompiledBatch(key=key))
            group.members.append(CompiledPoint(index, point, chain, run_seed))
        return list(groups.values()), fallback


class BatchedEvaluator:
    """Evaluates design points group-wise through ``process_batch`` kernels.

    Wraps a protocol-compliant evaluator (usually
    :class:`~repro.core.explorer.FrontEndEvaluator`).  Groups compiled by
    :class:`BatchCompiler` run as one vectorised chain pass; everything
    else -- incompatible chains, chain-construction errors, kernels that
    raise, exceeded group timeouts -- degrades to the scalar
    :func:`~repro.core.execution.evaluate_one_timed` path with its full
    policy (timeout/retry) semantics.  Results come back as the same
    ``(index, evaluation, elapsed, stats)`` rows the scalar chunk workers
    produce, so caching, checkpointing and telemetry are reused verbatim;
    batched rows carry ``stats["batched"]`` and demoted rows
    ``stats["batch_fallback"]`` for driver-side counters.
    """

    def __init__(
        self,
        evaluator: Callable[[DesignPoint], Evaluation],
        max_group_points: int = DEFAULT_MAX_GROUP_POINTS,
    ):
        if max_group_points < 1:
            raise ValueError(f"max_group_points must be >= 1, got {max_group_points}")
        self.evaluator = evaluator
        self.max_group_points = max_group_points

    def evaluate_chunk(
        self,
        chunk: Sequence[tuple[int, DesignPoint]],
        strict: bool = False,
        policy: ExecutionPolicy = DEFAULT_POLICY,
    ) -> list[tuple[int, Evaluation, float, dict]]:
        """Evaluate ``chunk``, vectorising where possible.

        Returns rows in ``chunk`` order regardless of how points were
        grouped, so the driver's reassembly logic is unaffected.
        """
        tel = get_active()
        rows: dict[int, tuple[int, Evaluation, float, dict]] = {}
        scalar: list[tuple[int, DesignPoint, dict]] = []
        groups: list[CompiledBatch] = []
        if supports_batching(self.evaluator):
            groups, fallback = BatchCompiler(self.evaluator).compile(chunk)
            for entry in fallback:
                scalar.append(self._demote(tel, entry.index, entry.point, entry.reason))
        else:
            reason = f"no_batch_protocol:{type(self.evaluator).__name__}"
            for i, p in chunk:
                scalar.append(self._demote(tel, i, p, reason))

        for group in groups:
            for start in range(0, len(group.members), self.max_group_points):
                members = group.members[start : start + self.max_group_points]
                began = time.perf_counter()
                try:
                    evaluations = self._run_group_with_policy(members, policy)
                except KeyboardInterrupt:
                    raise
                except Exception as error:
                    tel.count("batch.group_fallbacks")
                    log.warning(
                        "batched group of %d point(s) failed (%s: %s); falling "
                        "back to the scalar path",
                        len(members),
                        type(error).__name__,
                        error,
                    )
                    reason = f"group_failure:{type(error).__name__}"
                    scalar.extend(
                        self._demote(tel, m.index, m.point, reason) for m in members
                    )
                    continue
                elapsed = (time.perf_counter() - began) / len(members)
                tel.count("batch.groups")
                tel.count("batch.points", len(members))
                for member, evaluation in zip(members, evaluations):
                    rows[member.index] = (
                        member.index,
                        evaluation,
                        elapsed,
                        {"retries": 0, "timeouts": 0, "batched": 1},
                    )

        for index, point, extra in scalar:
            evaluation, elapsed, stats = evaluate_one_timed(
                self.evaluator, point, strict, policy
            )
            stats = {**stats, **extra}
            rows[index] = (index, evaluation, elapsed, stats)
        return [rows[index] for index, _ in chunk]

    @staticmethod
    def _demote(
        tel, index: int, point: DesignPoint, reason: str
    ) -> tuple[int, DesignPoint, dict]:
        """Record one scalar demotion (structured event + row stats)."""
        tel.event("batch.fallback", index=index, reason=reason)
        return index, point, {"batch_fallback": 1, "batch_fallback_reason": reason}

    def _run_group_with_policy(
        self, members: list[CompiledPoint], policy: ExecutionPolicy
    ) -> list[Evaluation]:
        """Run one group under the policy's (scaled) wall-clock ceiling.

        The per-point timeout scales to the group size -- a group of 16
        points gets 16x the single-point budget, preserving the policy's
        per-point intent.  A timed-out group raises and is demoted to the
        scalar path, where the per-point watchdog attributes the hang.
        """
        if policy.timeout_s is None:
            return self._run_group(members)
        ceiling = policy.timeout_s * len(members)
        return _call_with_timeout(lambda _point: self._run_group(members), None, ceiling)

    def run_group_signals(self, members: list[CompiledPoint]) -> BatchSignal:
        """One vectorised signal pass over a compiled group.

        Resets every member chain, builds per-point contexts, and drives
        the source stream through the stacked ``process_batch`` kernels.
        This is the part of an evaluation the batched engine actually
        vectorises (per-point scoring and power collection are
        executor-independent), so benchmarks time it directly.  The
        block loop itself is dispatched as the ``signal_pass`` kernel
        through :data:`repro.kernels.registry` — the numpy reference
        walks the stacked ``process_batch`` chain; a backend could swap
        the whole pass (no optional backend provides one today, so a
        non-numpy selection records an attributed fallback).
        """
        from repro.kernels import registry

        stream = self.evaluator.source_signal()
        n_points = len(members)
        for member in members:
            member.chain.reset()
        ctxs = [
            SimulationContext(seed=member.run_seed, design_point=member.point)
            for member in members
        ]
        batch = BatchSignal.broadcast(stream, n_points)
        n_blocks = len(members[0].chain.blocks)
        peer_rows = [
            [member.chain.blocks[position] for member in members]
            for position in range(n_blocks)
        ]
        return registry.call("signal_pass", batch, peer_rows, ctxs)

    def _run_group(self, members: list[CompiledPoint]) -> list[Evaluation]:
        """One vectorised chain pass over a compiled group, scored."""
        batch = self.run_group_signals(members)
        return [
            self.evaluator.score_output(
                member.point, batch.row(i), collect_power(member.chain, member.point)
            )
            for i, member in enumerate(members)
        ]
