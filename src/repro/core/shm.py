"""Zero-copy shared-memory transport for process-sharded sweeps.

Pool workers receive the evaluator through pickling (pool initargs under
the ``spawn``/``forkserver`` start methods, and any future transport
that serialises it).  For corpus-sized evaluators that means copying the
full sample stream once per worker: a 500-record EEG corpus is tens of
megabytes serialised N times.  :class:`SharedArray` replaces the bytes
with a handle — the driver publishes the array once into a
``multiprocessing.shared_memory`` segment, the pickle carries only
``(name, shape, dtype)``, and each worker maps the same physical pages
read-only.

Lifetime: segments are owned by a :class:`SharedArrayPool` on the
driver; workers only ever *attach*.  On Python < 3.13 attaching
registers the segment with the attaching process's ``resource_tracker``
(which would unlink it when that process exits — bpo-38119), so
non-owner attachments are explicitly unregistered and the owning pool
remains the single point of unlink.
"""

from __future__ import annotations

import logging
import threading
from multiprocessing import shared_memory

import numpy as np

log = logging.getLogger(__name__)

#: Process-lifetime map of attached segments (name -> SharedMemory).
#: Attachments are cached and never proactively closed: an ndarray view
#: handed out by :attr:`SharedArray.array` only borrows the mapping (it
#: does not keep the mmap alive through numpy's buffer protocol), so
#: closing an attachment while any view exists would leave the view
#: pointing at unmapped pages.  One mapping per segment per process is
#: the steady state; the OS reclaims them at process exit.
_ATTACHMENTS: dict[str, shared_memory.SharedMemory] = {}
_ATTACH_LOCK = threading.Lock()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment (cached, tracker-neutral).

    On Python < 3.13 attaching registers the segment with this process's
    ``resource_tracker``, which would unlink it when the process exits
    (bpo-38119) — lethal when the attacher is a short-lived pool worker
    and the driver still owns the segment.  Registration is suppressed
    for the duration of the attach; lifetime stays with the owning
    :class:`SharedArrayPool`.
    """
    with _ATTACH_LOCK:
        cached = _ATTACHMENTS.get(name)
        if cached is not None:
            return cached
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _skip_shared_memory(rname, rtype):  # pragma: no cover - trivial
            if rtype != "shared_memory":
                original_register(rname, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        _ATTACHMENTS[name] = shm
        return shm


class SharedArray:
    """A picklable handle to an ndarray living in shared memory.

    Pickles as ``(name, shape, dtype)``; the receiving process attaches
    lazily on first :attr:`array` access and gets a *read-only* view of
    the owner's pages — no bytes cross the process boundary.
    """

    def __init__(self, name: str, shape: tuple, dtype, *, _shm=None, _owner: bool = False):
        self.name = name
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self._shm = _shm
        self._owner = _owner

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedArray":
        """Publish ``array`` into a fresh owned segment (one copy)."""
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        del view
        return cls(shm.name, array.shape, array.dtype, _shm=shm, _owner=True)

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize

    @property
    def array(self) -> np.ndarray:
        """Read-only ndarray view over the shared pages (attaches lazily).

        Non-owner attachments go through the process-lifetime cache, so
        the returned view stays valid even after this handle is dropped
        (unpickled handles are typically transient while their views
        live on inside an evaluator).
        """
        shm = self._shm if self._shm is not None else _attach(self.name)
        view = np.ndarray(self.shape, dtype=self.dtype, buffer=shm.buf)
        view.flags.writeable = False
        return view

    def close(self, *, unlink: bool | None = None) -> None:
        """Release this process's mapping; owners also unlink the segment."""
        if self._shm is None:
            return
        if unlink is None:
            unlink = self._owner
        try:
            self._shm.close()
            if unlink:
                self._shm.unlink()
        except Exception:  # pragma: no cover - best-effort cleanup
            log.debug("shared-memory cleanup failed for %s", self.name, exc_info=True)
        self._shm = None

    def __reduce__(self):
        return (type(self), (self.name, self.shape, self.dtype.str))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedArray({self.name!r}, shape={self.shape}, dtype={self.dtype})"


class SharedArrayPool:
    """Owner of the shared segments backing one sweep.

    Context manager: arming an evaluator shares its arrays here, and
    :meth:`close` (or exiting the ``with`` block) unlinks everything —
    after the worker pool has shut down, so unlink-after-close is safe
    on POSIX (pages live until the last mapping drops).
    """

    def __init__(self) -> None:
        self._arrays: list[SharedArray] = []

    def share(self, array: np.ndarray) -> SharedArray:
        shared = SharedArray.create(array)
        self._arrays.append(shared)
        return shared

    def __len__(self) -> int:
        return len(self._arrays)

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self._arrays)

    def close(self) -> None:
        for shared in self._arrays:
            shared.close(unlink=True)
        self._arrays.clear()

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def shm_enabled() -> bool:
    """Shared-memory transport gate (``REPRO_SHM=0`` disables)."""
    import os

    return os.environ.get("REPRO_SHM", "").strip().lower() not in ("0", "false", "off")
