"""Adaptive multi-fidelity exploration: successive halving over fidelity rungs.

The exhaustive :meth:`~repro.core.explorer.DesignSpaceExplorer.explore`
evaluates every grid point at full fidelity, but the paper's pathfinding
goal only needs the *Pareto front* -- the overwhelming majority of a dense
grid is dominated and its full-fidelity evaluations are wasted.  This
module implements the classic successive-halving remedy:

1. A :class:`FidelitySchedule` derives *cheap* evaluator variants from the
   full-fidelity evaluator -- a smoke-scale corpus slice and a reduced
   solver iteration budget for :class:`~repro.core.explorer.FrontEndEvaluator`,
   or a user-supplied ``derive`` hook for custom evaluators.  Each variant
   carries its own cache fingerprint (the corpus slice and the scaled
   solver factory both feed :meth:`FrontEndEvaluator.fingerprint`), so
   low- and full-fidelity evaluations never share a cache entry.
2. Each *rung* runs one wave of the surviving points through the ordinary
   :class:`~repro.core.explorer.DesignSpaceExplorer` -- so the batched
   executor, :class:`~repro.core.execution.EvaluationCache`, per-rung
   checkpoint resume, timeouts/retries, telemetry and tracing all compose
   unchanged.
3. Survivors -- the rung's Pareto front, plus an optional
   epsilon-dominance band (:func:`~repro.core.pareto.epsilon_nondominated`)
   absorbing low-fidelity metric noise, topped up to a ``keep_frac`` floor
   by non-dominated-sorting layers -- are promoted to the next (more
   expensive) rung.  The final rung runs at full fidelity; its wave is the
   returned result.

The run is summarised in a :class:`PromotionLedger` (points proposed /
kept / promoted per rung plus the headline full-fidelity saving), which
the experiment runner records into the run manifest.
"""

from __future__ import annotations

import logging
import math
import time
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.pareto import Objective, epsilon_nondominated, pareto_front
from repro.core.results import Evaluation, ExplorationResult

log = logging.getLogger("repro.adaptive")

#: Fewest solver iterations a scaled reconstructor may run: below this
#: FISTA output is noise, which misranks rather than merely blurs.
MIN_SOLVER_ITERATIONS = 10


@dataclass(frozen=True)
class FidelityRung:
    """One evaluation fidelity of the successive-halving ladder.

    ``corpus_fraction`` scales the number of evaluation records (corpus
    rows); ``solver_scale`` scales the reconstruction solver's iteration
    budget.  Both are relative to the full-fidelity evaluator, in
    ``(0, 1]``; the product is the rung's approximate relative cost.
    """

    name: str
    corpus_fraction: float = 1.0
    solver_scale: float = 1.0

    def __post_init__(self) -> None:
        for label, value in (
            ("corpus_fraction", self.corpus_fraction),
            ("solver_scale", self.solver_scale),
        ):
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{label} must be in (0, 1], got {value}")

    @property
    def is_full(self) -> bool:
        """True for the full-fidelity rung (the original evaluator)."""
        return self.corpus_fraction == 1.0 and self.solver_scale == 1.0

    @property
    def cost_fraction(self) -> float:
        """Approximate relative evaluation cost of this rung."""
        return self.corpus_fraction * self.solver_scale


@dataclass(frozen=True)
class ScaledSolverFactory:
    """Reconstructor factory scaling the inner factory's iteration budget.

    A module-level frozen dataclass so low-fidelity evaluators stay
    picklable for process sweeps; exposes a content ``fingerprint`` so a
    scaled solver never shares a cache key with the full-budget one.
    """

    inner: Callable
    scale: float

    def __call__(self, point):
        reconstructor = self.inner(point)
        iterations = max(
            MIN_SOLVER_ITERATIONS, int(round(reconstructor.n_iter * self.scale))
        )
        return type(reconstructor)(
            basis=reconstructor.basis,
            method=reconstructor.method,
            lam_rel=reconstructor.lam_rel,
            sparsity=reconstructor.sparsity,
            n_iter=iterations,
            debias=reconstructor.debias,
        )

    def fingerprint(self) -> str:
        method = getattr(self.inner, "fingerprint", None)
        if callable(method):
            inner_tag = str(method())
        else:
            inner_tag = getattr(self.inner, "__qualname__", type(self.inner).__qualname__)
        return f"{inner_tag}:solver_scale={self.scale!r}"


def derive_low_fidelity(evaluator, rung: FidelityRung):
    """Default low-fidelity derivation for :class:`FrontEndEvaluator`.

    Slices the evaluation corpus to the leading ``corpus_fraction`` of its
    records (labels follow) and wraps the reconstructor factory in a
    :class:`ScaledSolverFactory`.  Evaluators that are not
    :class:`FrontEndEvaluator` instances are returned unchanged -- their
    "low fidelity" is the full computation, so adaptive runs still save
    full-fidelity *evaluation counts* but not per-evaluation cost;
    custom evaluators get real savings via ``FidelitySchedule(derive=...)``.
    """
    from repro.core.explorer import FrontEndEvaluator

    if rung.is_full or not isinstance(evaluator, FrontEndEvaluator):
        return evaluator
    n_records = evaluator.records.shape[0]
    keep = max(1, int(round(rung.corpus_fraction * n_records)))
    factory = evaluator.reconstructor_factory
    # The default factory is a bound method of the *source* evaluator;
    # passing it through would drag the full corpus into every pickle of
    # the derived evaluator.  Let the constructor rebind it instead.
    is_default = (
        getattr(factory, "__func__", None) is FrontEndEvaluator._default_reconstructor
    )
    derived = FrontEndEvaluator(
        records=evaluator.records[:keep],
        labels=None if evaluator.labels is None else evaluator.labels[:keep],
        sample_rate=evaluator.sample_rate,
        detector=evaluator.detector,
        seed=evaluator.seed,
        reconstructor_factory=None if is_default else factory,
        chain_transform=evaluator.chain_transform,
    )
    if rung.solver_scale < 1.0:
        derived.reconstructor_factory = ScaledSolverFactory(
            derived.reconstructor_factory, rung.solver_scale
        )
    return derived


class FidelitySchedule:
    """An ordered ladder of :class:`FidelityRung` ending at full fidelity.

    Parameters
    ----------
    rungs:
        Cheapest first; the last rung must be full fidelity (the search
        must finish on the real evaluator).  Costs must be non-decreasing.
    derive:
        Optional ``f(evaluator, rung) -> evaluator`` hook replacing
        :func:`derive_low_fidelity` for custom evaluator types.  It must
        return a picklable evaluator whose cache fingerprint differs from
        the full-fidelity one whenever its results do.
    """

    def __init__(
        self,
        rungs: Sequence[FidelityRung],
        derive: Callable[[object, FidelityRung], object] | None = None,
    ):
        rungs = tuple(rungs)
        if not rungs:
            raise ValueError("schedule needs at least one rung")
        if not rungs[-1].is_full:
            raise ValueError(
                "the last rung must be full fidelity "
                "(corpus_fraction == solver_scale == 1.0)"
            )
        costs = [rung.cost_fraction for rung in rungs]
        if any(a > b for a, b in zip(costs, costs[1:])):
            raise ValueError(f"rung costs must be non-decreasing, got {costs}")
        self.rungs = rungs
        self.derive = derive

    def __len__(self) -> int:
        return len(self.rungs)

    def __repr__(self) -> str:
        ladder = " -> ".join(
            f"{rung.name}({rung.cost_fraction:.3g})" for rung in self.rungs
        )
        return f"FidelitySchedule({ladder})"

    @classmethod
    def geometric(
        cls,
        n_rungs: int = 3,
        reduction: float = 4.0,
        min_corpus_fraction: float = 0.05,
        min_solver_scale: float = 0.25,
        derive: Callable[[object, FidelityRung], object] | None = None,
    ) -> "FidelitySchedule":
        """The standard successive-halving ladder.

        ``n_rungs`` rungs whose corpus fraction shrinks geometrically by
        ``reduction`` per rung below full fidelity (floored at
        ``min_corpus_fraction``), with the solver budget scaled by the
        square root of the corpus fraction (floored at
        ``min_solver_scale``) -- solvers degrade more gracefully than
        statistics, so they are throttled more gently.
        """
        if n_rungs < 1:
            raise ValueError(f"n_rungs must be >= 1, got {n_rungs}")
        if reduction <= 1.0:
            raise ValueError(f"reduction must be > 1, got {reduction}")
        rungs = []
        for level in range(n_rungs - 1, 0, -1):
            fraction = max(min_corpus_fraction, reduction**-level)
            solver = max(min_solver_scale, math.sqrt(fraction))
            rungs.append(
                FidelityRung(
                    name=f"rung{n_rungs - 1 - level}",
                    corpus_fraction=fraction,
                    solver_scale=solver,
                )
            )
        rungs.append(FidelityRung(name="full"))
        return cls(rungs, derive=derive)

    def evaluator_for(self, evaluator, rung: FidelityRung):
        """The evaluator variant to use at ``rung``."""
        if rung.is_full:
            return evaluator
        if self.derive is not None:
            return self.derive(evaluator, rung)
        return derive_low_fidelity(evaluator, rung)


@dataclass
class RungReport:
    """Promotion accounting of one rung (one row of the ledger)."""

    rung: int
    name: str
    corpus_fraction: float
    solver_scale: float
    proposed: int
    failures: int
    kept: int
    promoted: int
    wall_s: float
    interrupted: bool = False

    def to_dict(self) -> dict:
        return {
            "rung": self.rung,
            "name": self.name,
            "corpus_fraction": self.corpus_fraction,
            "solver_scale": self.solver_scale,
            "proposed": self.proposed,
            "failures": self.failures,
            "kept": self.kept,
            "promoted": self.promoted,
            "wall_s": self.wall_s,
            "interrupted": self.interrupted,
        }


@dataclass
class PromotionLedger:
    """Per-rung promotion history of one adaptive run."""

    grid_size: int
    keep_frac: float
    rungs: list[RungReport] = field(default_factory=list)

    @property
    def interrupted(self) -> bool:
        """True when the run stopped before finishing its final rung."""
        return any(report.interrupted for report in self.rungs)

    @property
    def full_fidelity_evaluations(self) -> int:
        """Points evaluated on the full-fidelity (final) rung."""
        return sum(
            report.proposed
            for report in self.rungs
            if report.corpus_fraction == 1.0 and report.solver_scale == 1.0
        )

    @property
    def low_fidelity_evaluations(self) -> int:
        """Points evaluated on reduced-fidelity rungs."""
        return sum(
            report.proposed
            for report in self.rungs
            if not (report.corpus_fraction == 1.0 and report.solver_scale == 1.0)
        )

    @property
    def reduction(self) -> float | None:
        """Grid size / full-fidelity evaluations (the headline saving)."""
        full = self.full_fidelity_evaluations
        return self.grid_size / full if full else None

    def to_dict(self) -> dict:
        return {
            "grid_size": self.grid_size,
            "keep_frac": self.keep_frac,
            "rungs": [report.to_dict() for report in self.rungs],
            "full_fidelity_evaluations": self.full_fidelity_evaluations,
            "low_fidelity_evaluations": self.low_fidelity_evaluations,
            "reduction": self.reduction,
            "interrupted": self.interrupted,
        }

    def summary(self) -> str:
        """Fixed-width per-rung table (repo plain-text conventions)."""
        lines = [
            f"{'rung':<10}{'fidelity':>10}{'proposed':>10}{'failed':>8}"
            f"{'kept':>7}{'promoted':>10}{'wall [s]':>10}"
        ]
        for report in self.rungs:
            tag = report.name + (" (interrupted)" if report.interrupted else "")
            lines.append(
                f"{tag:<10}{report.corpus_fraction * report.solver_scale:>10.3g}"
                f"{report.proposed:>10}{report.failures:>8}{report.kept:>7}"
                f"{report.promoted:>10}{report.wall_s:>10.2f}"
            )
        reduction = self.reduction
        if reduction is not None:
            lines.append(
                f"full-fidelity evaluations: {self.full_fidelity_evaluations} of "
                f"{self.grid_size} grid points ({reduction:.1f}x fewer than exhaustive)"
            )
        return "\n".join(lines)


class AdaptiveExplorationResult(ExplorationResult):
    """Full-fidelity finishers of an adaptive run plus its promotion ledger.

    Behaves exactly like an :class:`ExplorationResult` restricted to the
    points that reached the final rung (eliminated points were only ever
    measured at low fidelity, so their metrics are not comparable and are
    not included); ``ledger`` records what happened to the rest.
    """

    def __init__(
        self,
        evaluations: Sequence[Evaluation],
        ledger: PromotionLedger,
        name: str = "adaptive",
    ):
        super().__init__(evaluations, name=name)
        self.ledger = ledger


def select_survivors(
    entries: Sequence[tuple[int, Evaluation]],
    objectives: Sequence[Objective],
    keep_frac: float,
    epsilon: Mapping[str, float] | None = None,
    group_by: Callable[[Evaluation], object] | None = None,
) -> list[int]:
    """Indices (from ``entries``) promoted to the next rung.

    Per group (``group_by`` partitions the cloud, e.g. by architecture, so
    one group's dominance cannot starve another's front): the exact Pareto
    front, widened to the epsilon-dominance band when ``epsilon`` is
    given, then topped up with successive non-dominated-sorting layers
    until at least ``ceil(keep_frac * group size)`` points survive -- the
    floor hedges low-fidelity misranking near the front.  Points whose
    objective values are missing or non-finite are never promoted.
    """
    if not 0.0 < keep_frac <= 1.0:
        raise ValueError(f"keep_frac must be in (0, 1], got {keep_frac}")
    groups: dict[object, list[tuple[int, Evaluation]]] = {}
    for index, evaluation in entries:
        key = None if group_by is None else group_by(evaluation)
        groups.setdefault(key, []).append((index, evaluation))

    kept: list[int] = []
    use_band = epsilon is not None and any(v > 0 for v in epsilon.values())
    for members in groups.values():
        index_of = {id(evaluation): index for index, evaluation in members}
        evaluations = [evaluation for _, evaluation in members]
        if use_band:
            survivors = epsilon_nondominated(evaluations, objectives, dict(epsilon))
        else:
            survivors = pareto_front(evaluations, objectives)
        surviving_ids = {id(evaluation) for evaluation in survivors}
        floor = math.ceil(keep_frac * len(members))
        remaining = [e for e in evaluations if id(e) not in surviving_ids]
        while len(surviving_ids) < floor and remaining:
            layer = pareto_front(remaining, objectives)
            if not layer:
                break  # everything left is infeasible (NaN/missing metrics)
            surviving_ids.update(id(evaluation) for evaluation in layer)
            layer_ids = {id(evaluation) for evaluation in layer}
            remaining = [e for e in remaining if id(e) not in layer_ids]
        kept.extend(index_of[eid] for eid in surviving_ids)
    return sorted(kept)


def _rung_checkpoint(checkpoint: str | Path | None, rung: int) -> Path | None:
    """Per-rung checkpoint path: ``sweep.jsonl`` -> ``sweep.rung0.jsonl``."""
    if checkpoint is None:
        return None
    path = Path(checkpoint)
    return path.with_name(f"{path.stem}.rung{rung}{path.suffix or '.jsonl'}")


def run_adaptive(
    explorer,
    points: Iterable,
    *,
    objectives: Sequence[Objective],
    schedule: FidelitySchedule,
    keep_frac: float = 1 / 3,
    epsilon: Mapping[str, float] | None = None,
    group_by: Callable[[Evaluation], object] | None = None,
    name: str = "adaptive",
    telemetry=None,
    checkpoint: str | Path | None = None,
    **explore_kwargs,
) -> AdaptiveExplorationResult:
    """The successive-halving engine behind ``explore_adaptive``.

    ``explorer`` is the :class:`~repro.core.explorer.DesignSpaceExplorer`
    holding the *full-fidelity* evaluator; ``explore_kwargs`` are passed
    through to each rung's :meth:`explore` call (executor, workers, cache,
    policy, ...).  See
    :meth:`~repro.core.explorer.DesignSpaceExplorer.explore_adaptive` for
    the user-facing contract.
    """
    from repro.core.explorer import DesignSpaceExplorer
    from repro.core.telemetry import activate, get_active

    points = list(points)
    if not points:
        raise ValueError("design space produced no points to evaluate")
    if not objectives:
        raise ValueError("need at least one objective")
    tel = telemetry if telemetry is not None else get_active()
    ledger = PromotionLedger(grid_size=len(points), keep_frac=keep_frac)
    survivors = list(range(len(points)))
    final_wave: list[Evaluation] = []

    with activate(tel), tel.span("adaptive.total"):
        tel.count("adaptive.runs")
        for level, rung in enumerate(schedule.rungs):
            rung_points = [points[i] for i in survivors]
            rung_evaluator = schedule.evaluator_for(explorer.evaluator, rung)
            rung_explorer = (
                explorer
                if rung_evaluator is explorer.evaluator
                else DesignSpaceExplorer(rung_evaluator)
            )
            start = time.perf_counter()
            with tel.span("adaptive.rung", rung=level, rung_name=rung.name):
                wave = rung_explorer.explore(
                    rung_points,
                    name=f"{name}-{rung.name}",
                    telemetry=tel,
                    checkpoint=_rung_checkpoint(checkpoint, level),
                    **explore_kwargs,
                )
            wall_s = time.perf_counter() - start
            failures = wave.failures()
            interrupted = any(
                e.error is not None and e.error.startswith("Interrupted")
                for e in failures
            )
            tel.count("adaptive.rungs")
            tel.count(
                "adaptive.full_fidelity_points"
                if rung.is_full
                else "adaptive.low_fidelity_points",
                len(rung_points),
            )
            if interrupted:
                ledger.rungs.append(
                    RungReport(
                        rung=level,
                        name=rung.name,
                        corpus_fraction=rung.corpus_fraction,
                        solver_scale=rung.solver_scale,
                        proposed=len(rung_points),
                        failures=len(failures),
                        kept=0,
                        promoted=0,
                        wall_s=wall_s,
                        interrupted=True,
                    )
                )
                tel.count("adaptive.interrupted")
                log.warning(
                    "adaptive run interrupted on %s (%d/%d rungs); returning the "
                    "partial wave -- resume with the same checkpoint path to "
                    "continue",
                    rung.name,
                    level + 1,
                    len(schedule),
                )
                final_wave = list(wave)
                break
            successes = [
                (index, evaluation)
                for index, evaluation in zip(survivors, wave)
                if evaluation.ok
            ]
            is_last = level == len(schedule.rungs) - 1
            if is_last:
                final_wave = list(wave)
                front = pareto_front([e for _, e in successes], objectives)
                kept_count, promoted = len(front), 0
            else:
                with tel.span("adaptive.select", rung=level):
                    promoted_indices = select_survivors(
                        successes, objectives, keep_frac, epsilon, group_by
                    )
                if not promoted_indices:
                    raise ValueError(
                        f"rung {rung.name!r} produced no feasible survivors for "
                        f"objectives {[obj.metric for obj in objectives]}; do the "
                        "evaluations carry those metrics with finite values?"
                    )
                kept_count = promoted = len(promoted_indices)
                survivors = promoted_indices
            tel.count("adaptive.kept", kept_count)
            tel.count("adaptive.promoted", promoted)
            ledger.rungs.append(
                RungReport(
                    rung=level,
                    name=rung.name,
                    corpus_fraction=rung.corpus_fraction,
                    solver_scale=rung.solver_scale,
                    proposed=len(rung_points),
                    failures=len(failures),
                    kept=kept_count,
                    promoted=promoted,
                    wall_s=wall_s,
                )
            )
            tel.event(
                "adaptive.rung_done",
                rung=level,
                name=rung.name,
                proposed=len(rung_points),
                kept=kept_count,
                promoted=promoted,
            )
    return AdaptiveExplorationResult(final_wave, ledger=ledger, name=name)
