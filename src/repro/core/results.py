"""Result containers of design-space exploration.

:class:`Evaluation` pairs one design point with its measured metric dict;
:class:`ExplorationResult` is the evaluated sweep with Pareto/selection/
reporting conveniences used by every experiment.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.pareto import Objective, best_feasible, pareto_front
from repro.power.technology import DesignPoint


@dataclass
class Evaluation:
    """One evaluated design point.

    ``metrics`` holds scalar results (``snr_db``, ``accuracy``,
    ``power_uw``, ``area_units``, ...); ``breakdown`` optionally carries
    the per-block power dict for Fig. 4/8-style plots.  ``error`` is set
    (and ``metrics`` left empty) when the point failed to evaluate under
    the explorer's fault isolation.
    """

    point: DesignPoint
    metrics: dict[str, float]
    breakdown: dict[str, float] = field(default_factory=dict)
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True unless the evaluation failed."""
        return self.error is None

    def metric(self, name: str) -> float:
        """Metric value by name (KeyError lists what exists)."""
        try:
            return self.metrics[name]
        except KeyError:
            raise KeyError(
                f"no metric {name!r}; available: {sorted(self.metrics)}"
            ) from None

    def summary(self) -> str:
        """One-line report used in sweep logs."""
        parts = [self.point.describe()]
        for name in sorted(self.metrics):
            parts.append(f"{name}={self.metrics[name]:.4g}")
        if self.error is not None:
            parts.append(f"FAILED({self.error})")
        return "  ".join(parts)


class ExplorationResult:
    """The outcome of sweeping a design space."""

    def __init__(self, evaluations: Sequence[Evaluation], name: str = "sweep"):
        self.name = name
        self._evaluations = list(evaluations)

    def __len__(self) -> int:
        return len(self._evaluations)

    def __iter__(self):
        return iter(self._evaluations)

    def __getitem__(self, index: int) -> Evaluation:
        return self._evaluations[index]

    @property
    def evaluations(self) -> list[Evaluation]:
        """All evaluations (list copy)."""
        return list(self._evaluations)

    def filter(self, predicate: Callable[[Evaluation], bool]) -> "ExplorationResult":
        """Sub-result with evaluations satisfying ``predicate``."""
        return ExplorationResult(
            [e for e in self._evaluations if predicate(e)], name=self.name
        )

    def split_by_architecture(self) -> tuple["ExplorationResult", "ExplorationResult"]:
        """(baseline, cs) partition -- the two curves of Figs. 7/9/10."""
        baseline = self.filter(lambda e: not e.point.use_cs)
        cs = self.filter(lambda e: e.point.use_cs)
        baseline.name = f"{self.name}-baseline"
        cs.name = f"{self.name}-cs"
        return baseline, cs

    def failures(self) -> list[Evaluation]:
        """Evaluations that failed under fault isolation."""
        return [e for e in self._evaluations if not e.ok]

    def successes(self) -> "ExplorationResult":
        """Sub-result restricted to evaluations that did not fail."""
        return self.filter(lambda e: e.ok)

    def values(self, metric: str) -> list[float]:
        """All values of one metric, in evaluation order.

        Points lacking the metric (heterogeneous sweeps: failed points,
        detector-less baselines) yield ``nan`` rather than raising, so
        mixed sweeps stay plottable.
        """
        return [e.metrics.get(metric, float("nan")) for e in self._evaluations]

    def pareto(
        self,
        objectives: Sequence[Objective],
        constraint: Callable[[dict], bool] | None = None,
    ) -> list[Evaluation]:
        """Non-dominated evaluations under ``objectives`` (see core.pareto).

        Failed evaluations are excluded before domination filtering.
        """
        candidates = [e for e in self._evaluations if e.ok]
        return pareto_front(candidates, objectives, constraint=constraint)

    def best(
        self,
        minimize: str = "power_uw",
        constraint: Callable[[dict], bool] | None = None,
    ) -> Evaluation | None:
        """Feasible evaluation minimising ``minimize`` (the paper's optimum)."""
        candidates = [e for e in self._evaluations if e.ok]
        return best_feasible(candidates, minimize, constraint=constraint)

    def as_table(self, metrics: Sequence[str], max_rows: int | None = None) -> str:
        """Fixed-width text table of selected metrics.

        Metrics a row does not carry -- or carries as NaN (error rows
        scattered back from a failed batch shard) -- render as blank
        cells, so tables of heterogeneous sweeps (mixed baseline/CS,
        failed points) stay column-aligned with one consistent
        missing-value convention.
        """
        rows = self._evaluations if max_rows is None else self._evaluations[:max_rows]
        header = f"{'design point':<42}" + "".join(f"{m:>14}" for m in metrics)
        lines = [header]
        for evaluation in rows:
            cells = "".join(
                f"{value:>14.4g}" if (value := evaluation.metrics.get(m)) is not None
                and not math.isnan(value) else f"{'':>14}"
                for m in metrics
            )
            lines.append(f"{evaluation.point.describe():<42}{cells}")
        return "\n".join(lines)

    def to_dicts(self) -> list[dict]:
        """Plain-dict export (point description, metrics, error, breakdown).

        Aligned with :func:`~repro.core.serialization.evaluation_to_dict`:
        ``error`` is present exactly when the evaluation failed, and
        ``breakdown`` when the per-block power dict is non-empty -- so a
        failed point exports as a visibly failed row instead of a bare
        ``{"point": ...}`` indistinguishable from a metric-less success.
        """
        rows = []
        for e in self._evaluations:
            row: dict = {"point": e.point.describe(), **e.metrics}
            if e.breakdown:
                row["breakdown"] = dict(e.breakdown)
            if e.error is not None:
                row["error"] = e.error
            rows.append(row)
        return rows

    def to_csv(self, path: str, metrics: Sequence[str] | None = None) -> None:
        """Write the sweep as CSV (point description + selected metrics).

        ``metrics=None`` exports the union of all metric names, sorted.
        NaN metric values (error rows) export as empty fields, the same
        convention as metrics a row does not carry.  When any evaluation
        failed, a trailing ``error`` column carries the failure message
        (empty for successful rows), matching :meth:`to_dicts` -- an
        all-success sweep keeps the historical header.
        """
        import csv

        if metrics is None:
            names: set[str] = set()
            for evaluation in self._evaluations:
                names.update(evaluation.metrics)
            metrics = sorted(names)
        include_error = any(e.error is not None for e in self._evaluations)

        def cell(evaluation: Evaluation, name: str):
            value = evaluation.metrics.get(name, "")
            if isinstance(value, float) and math.isnan(value):
                return ""
            return value

        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["point", *metrics] + (["error"] if include_error else []))
            for evaluation in self._evaluations:
                row = [
                    evaluation.point.describe(),
                    *(cell(evaluation, name) for name in metrics),
                ]
                if include_error:
                    row.append(evaluation.error or "")
                writer.writerow(row)
