"""Crash flight recorder: always-on bounded ring of recent engine events.

Traces and telemetry answer questions about runs you *chose* to profile;
a postmortem usually concerns a run you did not.  This module keeps a
small, always-on ring buffer (a :class:`collections.deque`) of the most
recent notable events -- lease grants, chunk dispatches, point failures,
resource samples, anything recorded through :func:`record` or tapped
from :meth:`Telemetry.event` -- and dumps it to a ``flight-<ts>.json``
artifact the moment something goes wrong:

* a design-point evaluation exceeds its wall-clock ceiling
  (:class:`~repro.core.execution.EvaluationTimeout`);
* the fleet coordinator loses a worker mid-lease or quarantines a
  poison point (:mod:`repro.fleet.coordinator`);
* a process-pool crash is isolated to a single point
  (``DesignSpaceExplorer._isolate_crashers``).

Recording costs one dict build and a deque append, so it is safe to
leave on unconditionally -- which is the point: the artifact exists even
when ``--trace``/``--profile`` were off.

Dump location: ``$REPRO_FLIGHT_DIR`` if set, else ``.repro-flight/`` in
the working directory.  ``REPRO_FLIGHT=0`` disables dumping (the ring
still records, so an embedding application can call :func:`dump`
itself).  Dumps are rate-limited per process so a pathological sweep
cannot fill a disk with thousands of artifacts.

Stdlib-only, like the rest of the telemetry stack.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from collections import deque
from pathlib import Path

log = logging.getLogger("repro.flight")

#: Flight artifact schema.
FLIGHT_SCHEMA_VERSION = 1

#: Events retained in the ring (per process).
DEFAULT_FLIGHT_CAPACITY = 512

#: Hard per-process cap on dumped artifacts (a dump storm is itself a bug).
DEFAULT_MAX_DUMPS = 20

#: Environment switches.
ENV_FLIGHT_DIR = "REPRO_FLIGHT_DIR"
ENV_FLIGHT = "REPRO_FLIGHT"

_DEFAULT_DIR = ".repro-flight"


class FlightRecorder:
    """Bounded, thread-safe ring of recent events with artifact dumping."""

    def __init__(
        self,
        capacity: int = DEFAULT_FLIGHT_CAPACITY,
        directory: str | Path | None = None,
        max_dumps: int = DEFAULT_MAX_DUMPS,
    ):
        self.capacity = int(capacity)
        self.directory = Path(directory) if directory is not None else None
        self.max_dumps = int(max_dumps)
        self.recorded = 0
        self.dumps = 0
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=self.capacity)

    # --- recording ------------------------------------------------------------

    def record(self, kind: str, **fields) -> None:
        """Append one event to the ring (cheap; never raises)."""
        entry = {"kind": kind, "t_unix": time.time(), "pid": os.getpid(), **fields}
        with self._lock:
            self._ring.append(entry)
            self.recorded += 1

    def note(self, payload: dict) -> None:
        """Event-sink style tap: file an already-shaped telemetry event."""
        entry = dict(payload)
        entry.setdefault("t_unix", time.time())
        entry.setdefault("pid", os.getpid())
        with self._lock:
            self._ring.append(entry)
            self.recorded += 1

    def snapshot(self) -> list[dict]:
        """Copy of the ring contents, oldest first."""
        with self._lock:
            return list(self._ring)

    # --- dumping --------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether :meth:`dump` writes artifacts (``REPRO_FLIGHT=0`` opts out)."""
        return os.environ.get(ENV_FLIGHT, "1") != "0"

    def resolve_directory(self) -> Path:
        """Where dumps land: explicit > ``$REPRO_FLIGHT_DIR`` > cwd default."""
        if self.directory is not None:
            return self.directory
        return Path(os.environ.get(ENV_FLIGHT_DIR) or _DEFAULT_DIR)

    def dump(
        self,
        trigger: str,
        detail: str = "",
        directory: str | Path | None = None,
        **context,
    ) -> Path | None:
        """Write the ring as a ``flight-<ts>.json`` artifact; return its path.

        Returns ``None`` when dumping is disabled or the per-process dump
        budget is exhausted.  Never raises: a failing postmortem writer
        must not take down the run it is documenting.
        """
        if not self.enabled:
            return None
        with self._lock:
            if self.dumps >= self.max_dumps:
                return None
            sequence = self.dumps
            self.dumps += 1
            events = list(self._ring)
        try:
            target = Path(directory) if directory is not None else self.resolve_directory()
            target.mkdir(parents=True, exist_ok=True)
            now = time.time()
            stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(now))
            path = target / f"flight-{stamp}-{os.getpid()}-{sequence:02d}.json"
            payload = {
                "version": FLIGHT_SCHEMA_VERSION,
                "trigger": trigger,
                "detail": detail,
                "context": context,
                "t_unix": now,
                "pid": os.getpid(),
                "recorded": self.recorded,
                "capacity": self.capacity,
                "events": events,
                "resources": _sample_resources_safely(),
            }
            path.write_text(json.dumps(payload, default=repr) + "\n")
        except OSError as exc:  # pragma: no cover - disk-full style failures
            log.warning("flight recorder could not write artifact: %s", exc)
            return None
        log.warning(
            "flight recorder dumped %d events to %s (trigger: %s%s)",
            len(events),
            path,
            trigger,
            f": {detail}" if detail else "",
        )
        return path


def _sample_resources_safely() -> dict:
    """Resource snapshot for dump context; empty on any failure."""
    try:
        from repro.core.resources import sample_resources

        return sample_resources()
    except Exception:  # pragma: no cover - defensive
        return {}


# --- process-global recorder ---------------------------------------------------

_recorder = FlightRecorder()
_recorder_lock = threading.Lock()


def get_recorder() -> FlightRecorder:
    """The process-global flight recorder (always present, always on)."""
    return _recorder


def set_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Replace the global recorder (tests, embedders); returns the old one."""
    global _recorder
    with _recorder_lock:
        previous = _recorder
        _recorder = recorder
    return previous


def configure(
    capacity: int | None = None,
    directory: str | Path | None = None,
    max_dumps: int | None = None,
) -> FlightRecorder:
    """Re-point the global recorder (e.g. ``--flight-dir``); keeps the ring."""
    recorder = get_recorder()
    with recorder._lock:
        if capacity is not None and int(capacity) != recorder.capacity:
            recorder.capacity = int(capacity)
            recorder._ring = deque(recorder._ring, maxlen=recorder.capacity)
        if directory is not None:
            recorder.directory = Path(directory)
        if max_dumps is not None:
            recorder.max_dumps = int(max_dumps)
    return recorder


def record(kind: str, **fields) -> None:
    """Record one event on the global ring."""
    _recorder.record(kind, **fields)


def dump(trigger: str, detail: str = "", **context) -> Path | None:
    """Dump the global ring; see :meth:`FlightRecorder.dump`."""
    return _recorder.dump(trigger, detail, **context)
