"""Goal functions (paper Step 5).

A goal couples the optimisation objectives (what the Pareto front trades)
with an optional feasibility constraint (minimum quality, maximum area).
The three goals below are the ones the paper's experiments use; arbitrary
goals compose from :class:`~repro.core.pareto.Objective` directly.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.pareto import Objective


@dataclass(frozen=True)
class Goal:
    """Objectives + feasibility constraint + the metric to minimise when
    picking the single "optimal point"."""

    name: str
    objectives: tuple[Objective, ...]
    constraint: Callable[[dict], bool] | None = None
    minimize: str = "power_uw"

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ValueError("goal needs at least one objective")


def snr_power_goal() -> Goal:
    """Fig. 7 a): trade achieved SNR (max) against power (min)."""
    return Goal(
        name="snr-vs-power",
        objectives=(Objective("power_uw", maximize=False), Objective("snr_db", maximize=True)),
    )


def accuracy_power_goal(min_accuracy: float = 0.98) -> Goal:
    """Fig. 7 b): accuracy (max) vs power (min), optimum requires
    ``accuracy >= min_accuracy`` (the paper's 98 % application bound)."""
    if not 0.0 < min_accuracy <= 1.0:
        raise ValueError(f"min_accuracy must be in (0, 1], got {min_accuracy}")
    return Goal(
        name="accuracy-vs-power",
        objectives=(
            Objective("power_uw", maximize=False),
            Objective("accuracy", maximize=True),
        ),
        constraint=lambda metrics: metrics["accuracy"] >= min_accuracy,
    )


def area_constrained_goal(max_area_units: float, min_accuracy: float = 0.98) -> Goal:
    """Fig. 10: accuracy vs power under a total-capacitance cap."""
    if max_area_units <= 0:
        raise ValueError(f"max_area_units must be > 0, got {max_area_units}")
    return Goal(
        name=f"area<={max_area_units:g}",
        objectives=(
            Objective("power_uw", maximize=False),
            Objective("accuracy", maximize=True),
        ),
        constraint=lambda metrics: (
            metrics["area_units"] <= max_area_units and metrics["accuracy"] >= min_accuracy
        ),
    )


@dataclass(frozen=True)
class WeightedGoal:
    """Scalarised goal for single-number ranking (ablations, regressions).

    ``score = sum(weight * metric)`` with sign conventions folded into the
    weights (negative weight = minimise).  Not used by the paper's figures
    but handy for quick comparisons and optimisation loops.
    """

    weights: dict[str, float] = field(default_factory=dict)

    def score(self, metrics: dict) -> float:
        """Weighted scalar score of a metric dict."""
        if not self.weights:
            raise ValueError("weighted goal has no weights")
        return float(sum(weight * metrics[name] for name, weight in self.weights.items()))
