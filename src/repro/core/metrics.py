"""Fixed-bucket histograms and metrics export (OpenMetrics, JSONL events).

The PR-2 telemetry keeps count/total/min/max/mean (and, now, stddev) per
quantity, which answers "how slow on average" but not "how slow at the
tail" -- and a sweep whose p99 point latency is 40x its p50 has a
batching or caching problem that the mean hides entirely.  This module
adds the tail-visibility layer:

* :class:`Histogram` -- a fixed-bucket counting histogram (Prometheus
  style: cumulative ``le`` upper bounds plus an implicit ``+Inf``
  bucket) with interpolated :meth:`quantile` estimates (p50/p95/p99) and
  an exact, associative :meth:`merge` -- the property that lets worker
  snapshots combine into driver totals without losing tail information.
* :func:`render_openmetrics` -- serialises a
  :class:`~repro.core.telemetry.Telemetry` as an OpenMetrics/Prometheus
  textfile (``--metrics-out metrics.prom``), so a node-exporter textfile
  collector or a CI artifact diff can scrape sweep statistics.
* :class:`JsonlEventWriter` -- a structured-event sink: every telemetry
  event is appended to a JSONL file as it happens, surviving crashes
  that would lose the in-memory (bounded) event buffer.

Everything is stdlib-only (``bisect``, ``json``, ``math``) by design:
:mod:`repro.core.telemetry` imports this module, and telemetry must stay
importable from anywhere in the package without cycles or third-party
dependencies.
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path

#: Default latency bucket upper bounds in seconds: log-spaced from 100 us
#: to ~2 minutes, the honest range of a per-point evaluation (smoke-scale
#: toy evaluators to paper-scale FISTA solves).
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

#: Default iteration-count buckets (solver convergence histograms).
DEFAULT_ITERATION_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 300, 500, 1000,
)

#: The quantiles every histogram summary reports.
SUMMARY_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


@dataclass
class Histogram:
    """Fixed-bucket counting histogram with exact merge.

    ``bounds`` are ascending finite upper bounds; an observation lands in
    the first bucket whose bound is ``>= value``, or in the implicit
    ``+Inf`` overflow bucket.  ``counts`` has ``len(bounds) + 1`` slots
    (the last is the overflow).  Because the buckets are fixed at
    construction, merging two histograms with identical bounds is a
    plain elementwise sum -- associative and commutative, which is what
    cross-process telemetry merging requires.
    """

    bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        self.bounds = tuple(float(b) for b in self.bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly ascending: {self.bounds}")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        elif len(self.counts) != len(self.bounds) + 1:
            raise ValueError(
                f"{len(self.counts)} counts for {len(self.bounds)} bounds "
                f"(expected bounds + 1)"
            )

    def observe(self, value: float) -> None:
        """Fold one observation into the histogram."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean observation (nan before the first one)."""
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Interpolated quantile estimate from the bucket counts.

        Linear interpolation within the containing bucket (the standard
        Prometheus ``histogram_quantile`` estimator), clamped to the
        observed ``[min, max]`` so a wide outermost bucket cannot report
        a quantile outside the data.  ``nan`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return math.nan
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if i == len(self.bounds):  # overflow bucket: no upper bound
                    return self.max
                upper = self.bounds[i]
                lower = self.bounds[i - 1] if i else min(self.min, upper)
                fraction = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always hits above

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (exact; same bounds required)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def copy(self) -> "Histogram":
        """Independent deep copy (merge mutates in place)."""
        clone = Histogram(bounds=self.bounds, counts=list(self.counts))
        clone.count = self.count
        clone.total = self.total
        clone.min = self.min
        clone.max = self.max
        return clone

    def to_dict(self) -> dict:
        """JSON-ready dict with bucket counts and summary quantiles."""
        empty = not self.count
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": None if empty else self.mean,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            **{
                f"p{int(q * 100)}": (None if empty else self.quantile(q))
                for q in SUMMARY_QUANTILES
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        """Rebuild from :meth:`to_dict` output (quantiles are recomputed)."""
        histogram = cls(bounds=tuple(payload["bounds"]), counts=list(payload["counts"]))
        histogram.count = int(payload["count"])
        histogram.total = float(payload["total"])
        histogram.min = math.inf if payload["min"] is None else float(payload["min"])
        histogram.max = -math.inf if payload["max"] is None else float(payload["max"])
        return histogram


# --- OpenMetrics / Prometheus textfile export --------------------------------

_NAME_SANITISER = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """Telemetry name -> legal Prometheus metric name.

    ``explore.cache_hits`` becomes ``repro_explore_cache_hits``; any
    character outside ``[a-zA-Z0-9_]`` collapses to ``_``.
    """
    sanitised = _NAME_SANITISER.sub("_", name).strip("_")
    return f"{prefix}_{sanitised}" if prefix else sanitised


def _format_value(value: float) -> str:
    """Prometheus exposition value (special-cases the infinities)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_openmetrics(telemetry) -> str:
    """Serialise ``telemetry`` as an OpenMetrics textfile.

    Emits one metric family per telemetry name:

    * counters -> ``counter`` families (``_total`` suffix);
    * spans and value stats -> ``gauge`` families per statistic
      (``_count``/``_sum``/``_min``/``_max``/``_mean``/``_stddev``);
    * histograms -> native ``histogram`` families (cumulative ``le``
      buckets, ``_sum``, ``_count``) plus ``_p50``/``_p95``/``_p99``
      gauge estimates, since plain Prometheus histograms carry no
      precomputed quantiles.

    The output ends with the OpenMetrics ``# EOF`` terminator and is
    also valid Prometheus exposition format, so it works both as a
    node-exporter textfile and as a scrape body.
    """
    snapshot = telemetry.snapshot()
    lines: list[str] = []

    for name in sorted(snapshot["counters"]):
        family = metric_name(name)
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family}_total {_format_value(snapshot['counters'][name])}")

    for section, unit in (("spans", "seconds"), ("values", "")):
        for name in sorted(snapshot[section]):
            stats = snapshot[section][name]
            family = metric_name(f"{name}_{unit}" if unit else name)
            lines.append(f"# TYPE {family} gauge")
            lines.append(f"{family}_count {stats['count']}")
            lines.append(f"{family}_sum {_format_value(stats['total'])}")
            for stat in ("min", "max", "mean", "stddev"):
                if stats.get(stat) is not None:
                    lines.append(f"{family}_{stat} {_format_value(stats[stat])}")

    for name in sorted(snapshot.get("histograms", {})):
        payload = snapshot["histograms"][name]
        family = metric_name(name)
        lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += count
            lines.append(f'{family}_bucket{{le="{_format_value(bound)}"}} {cumulative}')
        cumulative += payload["counts"][-1]
        lines.append(f'{family}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{family}_sum {_format_value(payload['total'])}")
        lines.append(f"{family}_count {payload['count']}")
        for q in SUMMARY_QUANTILES:
            quantile = payload.get(f"p{int(q * 100)}")
            if quantile is not None:
                lines.append(f"# TYPE {family}_p{int(q * 100)} gauge")
                lines.append(f"{family}_p{int(q * 100)} {_format_value(quantile)}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(path: str | Path, telemetry) -> Path:
    """Write :func:`render_openmetrics` output to ``path``; returns it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_openmetrics(telemetry))
    return path


# --- JSONL structured-event sink ---------------------------------------------


class JsonlEventWriter:
    """Append-only JSONL sink for telemetry events.

    Attach as ``Telemetry(event_sink=JsonlEventWriter(path))``: every
    :meth:`~repro.core.telemetry.Telemetry.event` is written as one JSON
    line immediately (line-buffered), so a crashed run keeps its event
    trail even though the in-memory buffer is bounded and lost.  A
    payload that JSON cannot encode is degraded to its ``repr`` rather
    than raised -- a telemetry sink must never kill the run it observes.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", buffering=1)

    def __call__(self, payload: dict) -> None:
        try:
            line = json.dumps(payload)
        except (TypeError, ValueError):
            line = json.dumps({"kind": payload.get("kind"), "repr": repr(payload)})
        try:
            self._handle.write(line + "\n")
        except ValueError:  # closed handle: a late event after close()
            pass

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlEventWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
