"""System composition: chains and DAGs of blocks.

:class:`SystemModel` is the ordered single-path chain that covers both of
the paper's architectures (Fig. 1 a/b are linear chains).  For more exotic
topologies (multi-channel front-ends, feedback calibration paths)
:class:`SystemGraph` composes blocks as a networkx DAG with named multi-
input blocks; the chain remains the primary, heavily-tested surface.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx

from repro.core.block import Block, SimulationContext
from repro.core.signal import Signal
from repro.core.telemetry import Telemetry, get_active


class SystemModel:
    """An ordered chain of blocks with unique names.

    The chain is the unit the simulator executes and the explorer rebuilds
    per design point.  Blocks can be appended, inserted, replaced or
    removed by name, mirroring the "swap one block, re-simulate"
    pathfinding workflow of the paper.
    """

    def __init__(self, blocks: Iterable[Block] = (), name: str = "system"):
        self.name = name
        self._blocks: list[Block] = []
        for block in blocks:
            self.append(block)

    # --- composition --------------------------------------------------------

    def append(self, block: Block) -> "SystemModel":
        """Add ``block`` at the end of the chain (fluent)."""
        self._check_unique(block.name)
        self._blocks.append(block)
        return self

    def insert_after(self, existing: str, block: Block) -> "SystemModel":
        """Insert ``block`` right after the block named ``existing``."""
        self._check_unique(block.name)
        idx = self._index_of(existing)
        self._blocks.insert(idx + 1, block)
        return self

    def insert_before(self, existing: str, block: Block) -> "SystemModel":
        """Insert ``block`` right before the block named ``existing``."""
        self._check_unique(block.name)
        idx = self._index_of(existing)
        self._blocks.insert(idx, block)
        return self

    def replace(self, existing: str, block: Block) -> "SystemModel":
        """Swap the block named ``existing`` for ``block``."""
        idx = self._index_of(existing)
        if block.name != existing:
            self._check_unique(block.name)
        self._blocks[idx] = block
        return self

    def remove(self, name: str) -> "SystemModel":
        """Remove the block named ``name``."""
        del self._blocks[self._index_of(name)]
        return self

    def _check_unique(self, name: str) -> None:
        if any(existing.name == name for existing in self._blocks):
            raise ValueError(f"block name {name!r} already present in {self.name!r}")

    def _index_of(self, name: str) -> int:
        for idx, block in enumerate(self._blocks):
            if block.name == name:
                return idx
        raise KeyError(f"no block named {name!r} in {self.name!r}")

    # --- introspection --------------------------------------------------------

    @property
    def blocks(self) -> Sequence[Block]:
        """The chain's blocks in execution order (read-only view)."""
        return tuple(self._blocks)

    def block(self, name: str) -> Block:
        """Look a block up by name."""
        return self._blocks[self._index_of(name)]

    def block_names(self) -> list[str]:
        """Names in execution order."""
        return [block.name for block in self._blocks]

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, name: str) -> bool:
        return any(block.name == name for block in self._blocks)

    def __repr__(self) -> str:
        chain = " -> ".join(self.block_names()) or "<empty>"
        return f"SystemModel({self.name!r}: {chain})"

    # --- execution -------------------------------------------------------------

    def run(
        self,
        signal: Signal,
        ctx: SimulationContext,
        record_taps: bool = True,
        telemetry: "Telemetry | None" = None,
    ) -> Signal:
        """Execute the chain on ``signal`` under ``ctx``.

        Each block's output is recorded as a tap named after the block when
        ``record_taps`` is enabled (the Fig. 4-style per-block inspection
        relies on this).  ``telemetry`` (default: the ambient sink) gets
        one ``block.<name>`` wall-time span per block, the data behind the
        manifest's per-block time breakdown; with telemetry disabled the
        spans are shared no-ops.
        """
        if not self._blocks:
            raise ValueError(f"system {self.name!r} has no blocks")
        if telemetry is None:
            telemetry = get_active()
        current = signal
        if record_taps:
            ctx.record("input", current)
        for block in self._blocks:
            with telemetry.span(f"block.{block.name}"):
                current = block.process(current, ctx)
            if record_taps:
                ctx.record(block.name, current)
        return current

    def reset(self) -> None:
        """Reset every block for an identical re-run."""
        for block in self._blocks:
            block.reset()


class SystemGraph:
    """DAG composition of blocks for non-linear topologies.

    Nodes are blocks; an edge ``(u, v)`` feeds u's output into v.  Blocks
    with several predecessors receive the inputs as a list ordered by the
    ``slot`` edge attribute.  Execution is a topological sweep.

    The linear chain is a special case, but :class:`SystemModel` stays the
    preferred API for it (simpler, ordered, replaceable-by-name).
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self._graph = nx.DiGraph()
        self._blocks: dict[str, Block] = {}

    def add(self, block: Block) -> "SystemGraph":
        """Register a block as a node."""
        if block.name in self._blocks:
            raise ValueError(f"block name {block.name!r} already present")
        self._blocks[block.name] = block
        self._graph.add_node(block.name)
        return self

    def connect(self, src: str, dst: str, slot: int = 0) -> "SystemGraph":
        """Feed ``src``'s output into ``dst`` (input position ``slot``)."""
        for name in (src, dst):
            if name not in self._blocks:
                raise KeyError(f"unknown block {name!r}")
        self._graph.add_edge(src, dst, slot=slot)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(src, dst)
            raise ValueError(f"edge {src!r} -> {dst!r} would create a cycle")
        return self

    def blocks(self) -> dict[str, Block]:
        """Name -> block mapping."""
        return dict(self._blocks)

    def run(self, inputs: dict[str, Signal], ctx: SimulationContext) -> dict[str, Signal]:
        """Execute the DAG.

        ``inputs`` maps source-node names (in-degree 0) to their signals.
        Returns the outputs of every sink node (out-degree 0).
        """
        outputs: dict[str, Signal] = {}
        for node in nx.topological_sort(self._graph):
            block = self._blocks[node]
            preds = list(self._graph.predecessors(node))
            if not preds:
                if node not in inputs:
                    raise ValueError(f"source block {node!r} has no input signal")
                incoming: Signal | list[Signal] = inputs[node]
            else:
                ordered = sorted(preds, key=lambda p: self._graph.edges[p, node]["slot"])
                gathered = [outputs[p] for p in ordered]
                incoming = gathered[0] if len(gathered) == 1 else gathered
            result = block.process(incoming, ctx)  # type: ignore[arg-type]
            outputs[node] = result
            ctx.record(node, result)
        return {
            node: outputs[node]
            for node in self._graph.nodes
            if self._graph.out_degree(node) == 0
        }
