"""Pareto-front extraction over evaluated design points.

The paper's Figs. 7 and 10 report Pareto fronts trading power (minimise)
against quality (maximise SNR or accuracy).  These helpers are metric-
agnostic: callers declare, per objective, whether it is minimised or
maximised, and optionally add feasibility constraints (the area caps of
Fig. 10, the >= 98 % accuracy requirement of the optimal-point selection).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

#: Candidate block size of the vectorised domination filter: bounds peak
#: memory at ``n * block * n_objectives`` comparisons per step.
_PARETO_BLOCK = 256


@dataclass(frozen=True)
class Objective:
    """One optimisation axis: a metric name plus its direction."""

    metric: str
    maximize: bool = False

    def better_or_equal(self, a: float, b: float) -> bool:
        """True if value ``a`` is at least as good as ``b``.

        NaN follows IEEE comparison semantics (every comparison with NaN
        is False): a NaN value is never "at least as good" as anything,
        and nothing is "at least as good" as it -- exactly how NaN rows
        behave inside the vectorised :func:`pareto_front` filter.
        """
        return a >= b if self.maximize else a <= b

    def strictly_better(self, a: float, b: float) -> bool:
        """True if value ``a`` is strictly better than ``b`` (False when
        either value is NaN, per IEEE semantics)."""
        return a > b if self.maximize else a < b


def _all_finite(metrics: dict, objectives: Sequence[Objective]) -> bool:
    """True when every objective value is present and finite."""
    for obj in objectives:
        value = metrics.get(obj.metric)
        if value is None or not math.isfinite(value):
            return False
    return True


def dominates(a: dict, b: dict, objectives: Sequence[Objective]) -> bool:
    """True if metrics ``a`` Pareto-dominate metrics ``b``.

    ``a`` dominates when it is at least as good on every objective and
    strictly better on at least one.

    Non-finite objective values (NaN, +/-inf) carry the same semantics as
    the vectorised :func:`pareto_front` filter, which treats them as
    infeasible: a point with any non-finite objective value never
    dominates, and is dominated by every point whose objective values are
    all finite.  (Two non-finite points do not dominate each other.)
    Applied pairwise over an all-finite cloud this reduces to the
    textbook definition.
    """
    if not objectives:
        raise ValueError("need at least one objective")
    a_finite = _all_finite(a, objectives)
    b_finite = _all_finite(b, objectives)
    if not a_finite:
        return False
    if not b_finite:
        return True
    at_least_as_good = all(
        obj.better_or_equal(a[obj.metric], b[obj.metric]) for obj in objectives
    )
    strictly = any(obj.strictly_better(a[obj.metric], b[obj.metric]) for obj in objectives)
    return at_least_as_good and strictly


def pareto_front(
    evaluations: Sequence,
    objectives: Sequence[Objective],
    metrics_of: Callable[[object], dict] = lambda e: e.metrics,
    constraint: Callable[[dict], bool] | None = None,
) -> list:
    """Non-dominated subset of ``evaluations``.

    Parameters
    ----------
    evaluations:
        Any sequence; ``metrics_of`` extracts the metric dict from each
        item (defaults to an ``.metrics`` attribute).
    objectives:
        The axes of the trade-off.
    constraint:
        Optional feasibility predicate on the metric dict; infeasible
        items are excluded before domination filtering (Fig. 10's area
        caps).

    Returns the non-dominated items, sorted by the first objective
    (ascending for minimised, descending for maximised).  Items missing
    one of the objective metrics (heterogeneous sweeps, failed points)
    are treated as infeasible and excluded, like constraint violations.
    Non-finite objective values (NaN, +/-inf) are excluded the same way:
    NaN fails every ``<=``/``<`` comparison, so without the exclusion a
    NaN-valued point is never dominated and always pollutes the front.
    """
    if not objectives:
        raise ValueError("need at least one objective")
    names = [obj.metric for obj in objectives]
    feasible = []
    for item in evaluations:
        metrics = metrics_of(item)
        if not _all_finite(metrics, objectives):
            continue
        if constraint is None or constraint(metrics):
            feasible.append(item)
    if not feasible:
        return []
    # Vectorised non-dominated filter.  Sign-flip maximised axes so every
    # objective is minimised, then a candidate is dominated iff some row
    # is <= on every axis and < on at least one.  Identical rows never
    # strictly improve, so ties/duplicates all stay on the front, and the
    # diagonal (self vs self) needs no masking -- exactly the semantics of
    # the scalar ``dominates`` applied pairwise.
    signs = np.array([-1.0 if obj.maximize else 1.0 for obj in objectives])
    values = np.array(
        [[metrics_of(item)[name] for name in names] for item in feasible], dtype=float
    )
    values *= signs
    keep = np.ones(len(feasible), dtype=bool)
    for start in range(0, len(feasible), _PARETO_BLOCK):
        block = values[start : start + _PARETO_BLOCK]  # (b, k) candidates
        at_least = (values[:, None, :] <= block[None, :, :]).all(axis=2)  # (n, b)
        strictly = (values[:, None, :] < block[None, :, :]).any(axis=2)
        keep[start : start + block.shape[0]] = ~(at_least & strictly).any(axis=0)
    front = [item for item, kept in zip(feasible, keep) if kept]
    primary = objectives[0]
    front.sort(key=lambda item: metrics_of(item)[primary.metric], reverse=primary.maximize)
    return front


def best_feasible(
    evaluations: Sequence,
    minimize_metric: str,
    metrics_of: Callable[[object], dict] = lambda e: e.metrics,
    constraint: Callable[[dict], bool] | None = None,
):
    """The feasible item minimising ``minimize_metric`` (paper's "optimal point").

    E.g. the minimum-power design meeting accuracy >= 98 %.  Returns
    ``None`` when nothing is feasible.  Items missing ``minimize_metric``
    are infeasible by definition (heterogeneous sweeps, failed points),
    and so are NaN targets: NaN fails every comparison inside ``min``, so
    admitting one would make the winner depend on input order.
    """
    def usable(metrics: dict) -> bool:
        target = metrics.get(minimize_metric)
        if target is None or math.isnan(target):
            return False
        return constraint is None or constraint(metrics)

    feasible = [item for item in evaluations if usable(metrics_of(item))]
    if not feasible:
        return None
    return min(feasible, key=lambda item: metrics_of(item)[minimize_metric])


def epsilon_nondominated(
    evaluations: Sequence,
    objectives: Sequence[Objective],
    epsilon: dict[str, float],
    metrics_of: Callable[[object], dict] = lambda e: e.metrics,
    constraint: Callable[[dict], bool] | None = None,
) -> list:
    """The epsilon-approximate Pareto set: the front plus a tolerance band.

    An item is *eliminated* only when some other item beats it by more
    than ``epsilon[metric]`` on **every** objective (and strictly more on
    at least one) -- equivalently, an item survives when improving it by
    ``epsilon`` on each axis would place it on the exact front.  With all
    epsilons zero this is exactly :func:`pareto_front`; with positive
    epsilons it additionally keeps near-front items whose metrics are
    uncertain by up to ``epsilon`` (e.g. low-fidelity estimates in the
    adaptive explorer).  ``epsilon`` maps metric name to an absolute
    non-negative slack; metrics not listed get zero slack.

    Feasibility rules (missing metrics, non-finite values, ``constraint``)
    match :func:`pareto_front`; the returned items are sorted by the first
    objective the same way.
    """
    if not objectives:
        raise ValueError("need at least one objective")
    slack = []
    for obj in objectives:
        value = float(epsilon.get(obj.metric, 0.0))
        if not math.isfinite(value) or value < 0.0:
            raise ValueError(
                f"epsilon for {obj.metric!r} must be finite and >= 0, got {value}"
            )
        slack.append(value)
    names = [obj.metric for obj in objectives]
    feasible = []
    for item in evaluations:
        metrics = metrics_of(item)
        if not _all_finite(metrics, objectives):
            continue
        if constraint is None or constraint(metrics):
            feasible.append(item)
    if not feasible:
        return []
    signs = np.array([-1.0 if obj.maximize else 1.0 for obj in objectives])
    values = np.array(
        [[metrics_of(item)[name] for name in names] for item in feasible], dtype=float
    )
    values *= signs
    eps = np.asarray(slack, dtype=float)
    keep = np.ones(len(feasible), dtype=bool)
    for start in range(0, len(feasible), _PARETO_BLOCK):
        # The standard filter applied against epsilon-improved candidates:
        # block rows get their slack as a bonus before the comparison.
        block = values[start : start + _PARETO_BLOCK] - eps[None, :]
        at_least = (values[:, None, :] <= block[None, :, :]).all(axis=2)
        strictly = (values[:, None, :] < block[None, :, :]).any(axis=2)
        keep[start : start + block.shape[0]] = ~(at_least & strictly).any(axis=0)
    band = [item for item, kept in zip(feasible, keep) if kept]
    primary = objectives[0]
    band.sort(key=lambda item: metrics_of(item)[primary.metric], reverse=primary.maximize)
    return band
