"""Pareto-front extraction over evaluated design points.

The paper's Figs. 7 and 10 report Pareto fronts trading power (minimise)
against quality (maximise SNR or accuracy).  These helpers are metric-
agnostic: callers declare, per objective, whether it is minimised or
maximised, and optionally add feasibility constraints (the area caps of
Fig. 10, the >= 98 % accuracy requirement of the optimal-point selection).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

#: Candidate block size of the vectorised domination filter: bounds peak
#: memory at ``n * block * n_objectives`` comparisons per step.
_PARETO_BLOCK = 256


@dataclass(frozen=True)
class Objective:
    """One optimisation axis: a metric name plus its direction."""

    metric: str
    maximize: bool = False

    def better_or_equal(self, a: float, b: float) -> bool:
        """True if value ``a`` is at least as good as ``b``."""
        return a >= b if self.maximize else a <= b

    def strictly_better(self, a: float, b: float) -> bool:
        """True if value ``a`` is strictly better than ``b``."""
        return a > b if self.maximize else a < b


def dominates(a: dict, b: dict, objectives: Sequence[Objective]) -> bool:
    """True if metrics ``a`` Pareto-dominate metrics ``b``.

    ``a`` dominates when it is at least as good on every objective and
    strictly better on at least one.
    """
    if not objectives:
        raise ValueError("need at least one objective")
    at_least_as_good = all(
        obj.better_or_equal(a[obj.metric], b[obj.metric]) for obj in objectives
    )
    strictly = any(obj.strictly_better(a[obj.metric], b[obj.metric]) for obj in objectives)
    return at_least_as_good and strictly


def pareto_front(
    evaluations: Sequence,
    objectives: Sequence[Objective],
    metrics_of: Callable[[object], dict] = lambda e: e.metrics,
    constraint: Callable[[dict], bool] | None = None,
) -> list:
    """Non-dominated subset of ``evaluations``.

    Parameters
    ----------
    evaluations:
        Any sequence; ``metrics_of`` extracts the metric dict from each
        item (defaults to an ``.metrics`` attribute).
    objectives:
        The axes of the trade-off.
    constraint:
        Optional feasibility predicate on the metric dict; infeasible
        items are excluded before domination filtering (Fig. 10's area
        caps).

    Returns the non-dominated items, sorted by the first objective
    (ascending for minimised, descending for maximised).  Items missing
    one of the objective metrics (heterogeneous sweeps, failed points)
    are treated as infeasible and excluded, like constraint violations.
    """
    if not objectives:
        raise ValueError("need at least one objective")
    names = [obj.metric for obj in objectives]
    feasible = []
    for item in evaluations:
        metrics = metrics_of(item)
        if any(name not in metrics for name in names):
            continue
        if constraint is None or constraint(metrics):
            feasible.append(item)
    if not feasible:
        return []
    # Vectorised non-dominated filter.  Sign-flip maximised axes so every
    # objective is minimised, then a candidate is dominated iff some row
    # is <= on every axis and < on at least one.  Identical rows never
    # strictly improve, so ties/duplicates all stay on the front, and the
    # diagonal (self vs self) needs no masking -- exactly the semantics of
    # the scalar ``dominates`` applied pairwise.
    signs = np.array([-1.0 if obj.maximize else 1.0 for obj in objectives])
    values = np.array(
        [[metrics_of(item)[name] for name in names] for item in feasible], dtype=float
    )
    values *= signs
    keep = np.ones(len(feasible), dtype=bool)
    for start in range(0, len(feasible), _PARETO_BLOCK):
        block = values[start : start + _PARETO_BLOCK]  # (b, k) candidates
        at_least = (values[:, None, :] <= block[None, :, :]).all(axis=2)  # (n, b)
        strictly = (values[:, None, :] < block[None, :, :]).any(axis=2)
        keep[start : start + block.shape[0]] = ~(at_least & strictly).any(axis=0)
    front = [item for item, kept in zip(feasible, keep) if kept]
    primary = objectives[0]
    front.sort(key=lambda item: metrics_of(item)[primary.metric], reverse=primary.maximize)
    return front


def best_feasible(
    evaluations: Sequence,
    minimize_metric: str,
    metrics_of: Callable[[object], dict] = lambda e: e.metrics,
    constraint: Callable[[dict], bool] | None = None,
):
    """The feasible item minimising ``minimize_metric`` (paper's "optimal point").

    E.g. the minimum-power design meeting accuracy >= 98 %.  Returns
    ``None`` when nothing is feasible.  Items missing ``minimize_metric``
    are infeasible by definition (heterogeneous sweeps, failed points).
    """
    feasible = [
        item
        for item in evaluations
        if minimize_metric in (metrics := metrics_of(item))
        and (constraint is None or constraint(metrics))
    ]
    if not feasible:
        return None
    return min(feasible, key=lambda item: metrics_of(item)[minimize_metric])
