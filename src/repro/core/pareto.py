"""Pareto-front extraction over evaluated design points.

The paper's Figs. 7 and 10 report Pareto fronts trading power (minimise)
against quality (maximise SNR or accuracy).  These helpers are metric-
agnostic: callers declare, per objective, whether it is minimised or
maximised, and optionally add feasibility constraints (the area caps of
Fig. 10, the >= 98 % accuracy requirement of the optimal-point selection).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class Objective:
    """One optimisation axis: a metric name plus its direction."""

    metric: str
    maximize: bool = False

    def better_or_equal(self, a: float, b: float) -> bool:
        """True if value ``a`` is at least as good as ``b``."""
        return a >= b if self.maximize else a <= b

    def strictly_better(self, a: float, b: float) -> bool:
        """True if value ``a`` is strictly better than ``b``."""
        return a > b if self.maximize else a < b


def dominates(a: dict, b: dict, objectives: Sequence[Objective]) -> bool:
    """True if metrics ``a`` Pareto-dominate metrics ``b``.

    ``a`` dominates when it is at least as good on every objective and
    strictly better on at least one.
    """
    if not objectives:
        raise ValueError("need at least one objective")
    at_least_as_good = all(
        obj.better_or_equal(a[obj.metric], b[obj.metric]) for obj in objectives
    )
    strictly = any(obj.strictly_better(a[obj.metric], b[obj.metric]) for obj in objectives)
    return at_least_as_good and strictly


def pareto_front(
    evaluations: Sequence,
    objectives: Sequence[Objective],
    metrics_of: Callable[[object], dict] = lambda e: e.metrics,
    constraint: Callable[[dict], bool] | None = None,
) -> list:
    """Non-dominated subset of ``evaluations``.

    Parameters
    ----------
    evaluations:
        Any sequence; ``metrics_of`` extracts the metric dict from each
        item (defaults to an ``.metrics`` attribute).
    objectives:
        The axes of the trade-off.
    constraint:
        Optional feasibility predicate on the metric dict; infeasible
        items are excluded before domination filtering (Fig. 10's area
        caps).

    Returns the non-dominated items, sorted by the first objective
    (ascending for minimised, descending for maximised).
    """
    feasible = [
        item
        for item in evaluations
        if constraint is None or constraint(metrics_of(item))
    ]
    front = []
    for candidate in feasible:
        cand_metrics = metrics_of(candidate)
        if not any(
            dominates(metrics_of(other), cand_metrics, objectives)
            for other in feasible
            if other is not candidate
        ):
            front.append(candidate)
    primary = objectives[0]
    front.sort(key=lambda item: metrics_of(item)[primary.metric], reverse=primary.maximize)
    return front


def best_feasible(
    evaluations: Sequence,
    minimize_metric: str,
    metrics_of: Callable[[object], dict] = lambda e: e.metrics,
    constraint: Callable[[dict], bool] | None = None,
):
    """The feasible item minimising ``minimize_metric`` (paper's "optimal point").

    E.g. the minimum-power design meeting accuracy >= 98 %.  Returns
    ``None`` when nothing is feasible.
    """
    feasible = [
        item
        for item in evaluations
        if constraint is None or constraint(metrics_of(item))
    ]
    if not feasible:
        return None
    return min(feasible, key=lambda item: metrics_of(item)[minimize_metric])
