"""Hierarchical tracing: parent/child spans, lanes, Chrome-trace export.

The flat ``Telemetry`` span *statistics* answer "how much total time went
into FISTA"; they cannot answer "which shard stalled at minute three".
This module records the individual span instances -- with explicit span
IDs, parent links, and a (process, thread) lane per event -- and exports
them as Chrome trace-event JSON, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* :class:`Tracer` -- a thread-safe, bounded recorder attached to a
  :class:`~repro.core.telemetry.Telemetry`.  Every ``telemetry.span()``
  entered while a tracer is attached emits one complete ("X") event;
  the parent is whatever span the *same thread* is currently inside
  (a thread-local stack), which is how sweep -> shard -> point -> block
  -> solver nesting emerges without any block knowing about tracing.
* **Instant events** -- :meth:`Tracer.instant` marks zero-duration
  occurrences (cache hits, checkpoint restores, batch demotions) as
  "i" events so they are visible on the timeline without faking spans.
* **Cross-process lanes** -- each tracer stamps its events with its
  ``os.getpid()`` and a human label ("driver", "worker-1234").  Worker
  tracers ship their events home inside a telemetry snapshot; the
  driver's :meth:`Tracer.absorb` files them under the worker's lane, so
  the exported trace shows one swimlane per process.

Timestamps: events are recorded with ``time.perf_counter()`` (monotonic,
sub-microsecond) and exported on an epoch-aligned axis by anchoring each
tracer's perf-counter origin to ``time.time()`` once at construction.
Lanes from different processes therefore line up to wall-clock accuracy,
which on one machine is far below a design-point evaluation.  For lanes
from *other machines* the wall clocks themselves may disagree: a remote
tracer carries a ``clock_offset_s`` (measured by the fleet handshake,
NTP-style) that :meth:`Tracer.absorb` adds to every absorbed timestamp,
and the per-lane offsets are reported in :meth:`Tracer.summary` so the
manifest records how far each worker's clock was skewed.

Stdlib-only by design (``os``, ``threading``, ``time``, ``json``): the
telemetry stack must stay importable from anywhere without cycles.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from pathlib import Path
from typing import Sequence

log = logging.getLogger("repro.tracing")

#: Bound on retained trace events per tracer; at ~6 events per design
#: point (point + blocks + solver) this covers sweeps of ~30k points.
DEFAULT_MAX_TRACE_EVENTS = 200_000

#: Trace snapshot schema (the picklable payload workers ship home).
TRACE_SNAPSHOT_VERSION = 1


def _category(name: str) -> str:
    """Trace category of a span name: the prefix before the first dot."""
    return name.split(".", 1)[0]


class _SpanToken:
    """Open-span bookkeeping handed from :meth:`Tracer.start` to ``finish``."""

    __slots__ = ("name", "span_id", "parent_id", "start_perf", "args")

    def __init__(self, name: str, span_id: str, parent_id: str | None, args: dict):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_perf = time.perf_counter()
        self.args = args


class Tracer:
    """Thread-safe recorder of individual span instances and instants.

    Parameters
    ----------
    label:
        Human name of this process's lane ("driver", "worker-51123").
    max_events:
        Bound on retained events; once full, further events are counted
        (``dropped``) but discarded, so tracing an unbounded sweep
        cannot grow memory without limit.
    """

    def __init__(self, label: str = "driver", max_events: int = DEFAULT_MAX_TRACE_EVENTS):
        self.label = str(label)
        self.pid = os.getpid()
        self.max_events = int(max_events)
        self.dropped = 0
        #: Seconds to ADD to this tracer's wall timestamps to land on the
        #: coordinator's clock; stamped into snapshots so the absorbing
        #: side aligns remote lanes (0.0 for local tracers).
        self.clock_offset_s = 0.0
        self._lock = threading.Lock()
        self._events: list[dict] = []
        #: pid -> lane label, including lanes absorbed from workers.
        self._lanes: dict[int, str] = {self.pid: self.label}
        #: lane label -> measured clock offset applied at absorb time.
        self._lane_offsets: dict[str, float] = {}
        #: lane label -> events that lane reported dropping (own + absorbed).
        self._lane_dropped: dict[str, int] = {}
        self._drop_warned = False
        self._stack = threading.local()
        self._next_id = 0
        self._tids: dict[int, int] = {}
        # Epoch anchor: perf_counter deltas from here map onto wall time.
        self._epoch_unix = time.time()
        self._epoch_perf = time.perf_counter()

    # --- recording ------------------------------------------------------------

    def _thread_stack(self) -> list:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = self._stack.spans = []
        return stack

    def _tid(self) -> int:
        """Small stable per-thread lane id (1, 2, ... in first-seen order)."""
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.get(ident)
            if tid is None:
                tid = self._tids[ident] = len(self._tids) + 1
            return tid

    def _allocate_id(self) -> str:
        with self._lock:
            self._next_id += 1
            return f"{self.pid}:{self._next_id}"

    def _to_unix(self, perf: float) -> float:
        return self._epoch_unix + (perf - self._epoch_perf)

    def current_span_id(self) -> str | None:
        """Span id of the calling thread's innermost open span, if any.

        The fleet coordinator reads this inside its ``fleet.run`` span to
        stamp leases with a parent span id workers can link under.
        """
        stack = getattr(self._stack, "spans", None)
        return stack[-1].span_id if stack else None

    def start(self, name: str, **args) -> _SpanToken:
        """Open one span instance; the same thread's open span is its parent."""
        stack = self._thread_stack()
        parent_id = stack[-1].span_id if stack else None
        token = _SpanToken(name, self._allocate_id(), parent_id, args)
        stack.append(token)
        return token

    def finish(self, token: _SpanToken) -> None:
        """Close ``token`` and record its complete event."""
        end_perf = time.perf_counter()
        stack = self._thread_stack()
        # Tolerate out-of-order exits (a generator span escaping its
        # frame): pop up to and including the token instead of asserting.
        while stack:
            if stack.pop() is token:
                break
        self._append(
            {
                "ph": "X",
                "name": token.name,
                "cat": _category(token.name),
                "t": self._to_unix(token.start_perf),
                "dur": end_perf - token.start_perf,
                "pid": self.pid,
                "tid": self._tid(),
                "id": token.span_id,
                "parent": token.parent_id,
                "args": token.args,
            }
        )

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration marker (cache hit, restore, demotion)."""
        stack = self._thread_stack()
        self._append(
            {
                "ph": "i",
                "name": name,
                "cat": _category(name),
                "t": self._to_unix(time.perf_counter()),
                "dur": 0.0,
                "pid": self.pid,
                "tid": self._tid(),
                "id": self._allocate_id(),
                "parent": stack[-1].span_id if stack else None,
                "args": args,
            }
        )

    def counter(self, name: str, **values: float) -> None:
        """Record a Chrome counter ("C") sample: a named set of series values.

        Perfetto renders these as stacked per-process counter tracks --
        the resource sampler uses them for RSS/CPU/thread timelines.
        """
        self._append(
            {
                "ph": "C",
                "name": name,
                "cat": _category(name),
                "t": self._to_unix(time.perf_counter()),
                "dur": 0.0,
                "pid": self.pid,
                "tid": 0,
                "id": None,
                "parent": None,
                "args": {key: float(value) for key, value in values.items()},
            }
        )

    def _append(self, event: dict) -> None:
        with self._lock:
            if len(self._events) < self.max_events:
                self._events.append(event)
                return
            self.dropped += 1
            self._lane_dropped[self.label] = self._lane_dropped.get(self.label, 0) + 1
            warn_now = not self._drop_warned
            self._drop_warned = True
        if warn_now:
            log.warning(
                "tracer %r hit max_events=%d; further trace events are "
                "dropped (counted in the manifest trace section)",
                self.label,
                self.max_events,
            )

    # --- snapshot / merge -------------------------------------------------------

    def snapshot(self, drain: bool = False) -> dict:
        """Picklable copy of the recorded events and lane table.

        ``drain=True`` atomically clears the event buffer (worker chunks
        ship deltas home, so driver-side absorption never double-counts).
        """
        with self._lock:
            events = list(self._events)
            lanes = dict(self._lanes)
            dropped = self.dropped
            if drain:
                self._events = []
                self.dropped = 0
                self._lane_dropped.pop(self.label, None)
        return {
            "version": TRACE_SNAPSHOT_VERSION,
            "label": self.label,
            "pid": self.pid,
            "events": events,
            "lanes": lanes,
            "dropped": dropped,
            "clock_offset_s": self.clock_offset_s,
        }

    def absorb(self, snapshot: dict, clock_offset_s: float | None = None) -> None:
        """File another tracer's snapshot under its own lanes.

        Events keep their original pid/tid (that *is* the lane), so a
        worker's spans render in the worker's swimlane, not the driver's.
        Timestamps are shifted onto this tracer's clock by
        ``clock_offset_s`` (explicit argument, else the offset the remote
        tracer stamped into the snapshot); the applied offset and the
        remote side's dropped-event count are remembered per lane for
        :meth:`summary`.
        """
        if snapshot.get("version") != TRACE_SNAPSHOT_VERSION:
            raise ValueError(
                f"trace snapshot version {snapshot.get('version')!r} != "
                f"supported {TRACE_SNAPSHOT_VERSION}"
            )
        offset = clock_offset_s
        if offset is None:
            offset = float(snapshot.get("clock_offset_s", 0.0) or 0.0)
        events = snapshot["events"]
        if offset:
            events = [{**event, "t": event["t"] + offset} for event in events]
        label = str(snapshot.get("label", "")) or None
        remote_dropped = int(snapshot.get("dropped", 0))
        with self._lock:
            # Lane keys arrive as ints from pickled snapshots but as
            # strings after a JSON round-trip (the fleet wire); normalise.
            self._lanes.update(
                {int(pid): str(name) for pid, name in snapshot.get("lanes", {}).items()}
            )
            room = self.max_events - len(self._events)
            self._events.extend(events[:room])
            overflow = max(0, len(events) - room)
            self.dropped += remote_dropped + overflow
            if label is not None:
                if offset or label in self._lane_offsets:
                    self._lane_offsets[label] = offset
                if remote_dropped:
                    self._lane_dropped[label] = (
                        self._lane_dropped.get(label, 0) + remote_dropped
                    )
                if overflow:
                    self._lane_dropped[self.label] = (
                        self._lane_dropped.get(self.label, 0) + overflow
                    )

    @property
    def n_events(self) -> int:
        """Number of retained events (post-drop)."""
        with self._lock:
            return len(self._events)

    def lanes(self) -> dict[int, str]:
        """pid -> label for every lane seen (own + absorbed)."""
        with self._lock:
            return dict(self._lanes)

    def summary(self) -> dict:
        """JSON-ready digest for the run manifest (no event bodies).

        Beyond the totals this reports the trace-merge bookkeeping: the
        clock offset applied to each absorbed lane and how many events
        each lane dropped, so a truncated or skewed distributed trace is
        visible from the manifest alone.
        """
        with self._lock:
            return {
                "events": len(self._events),
                "dropped": self.dropped,
                "lanes": {str(pid): label for pid, label in sorted(self._lanes.items())},
                "clock_offsets": {
                    label: offset
                    for label, offset in sorted(self._lane_offsets.items())
                },
                "dropped_by_lane": {
                    label: count
                    for label, count in sorted(self._lane_dropped.items())
                    if count
                },
            }


# --- Chrome trace-event export -----------------------------------------------


def chrome_trace(snapshot: dict) -> dict:
    """Convert a :meth:`Tracer.snapshot` into Chrome trace-event JSON.

    Emits the JSON-object flavour (``{"traceEvents": [...]}``) with
    process-name metadata per lane, complete ("X") events carrying
    ``span_id``/``parent_id`` in their args, and instant ("i") events
    with thread scope.  Timestamps are microseconds (the format's unit);
    durations are floored at a tenth of a microsecond so zero-length
    spans stay clickable in Perfetto.
    """
    events: list[dict] = []
    lanes = snapshot.get("lanes", {})
    for pid, label in sorted(lanes.items(), key=lambda item: int(item[0])):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": int(pid),
                "tid": 0,
                "args": {"name": label},
            }
        )
    for record in snapshot["events"]:
        exported = {
            "ph": record["ph"],
            "name": record["name"],
            "cat": record["cat"],
            "pid": record["pid"],
            "tid": record["tid"],
            "ts": record["t"] * 1e6,
        }
        if record["ph"] == "C":
            # Counter samples: args are the series values, verbatim.
            exported["args"] = dict(record.get("args", {}))
        else:
            exported["args"] = {
                **record.get("args", {}),
                "span_id": record["id"],
                "parent_id": record["parent"],
            }
        if record["ph"] == "X":
            exported["dur"] = max(record["dur"] * 1e6, 0.1)
        elif record["ph"] == "i":
            exported["s"] = "t"  # thread-scoped instant
        events.append(exported)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, tracer: Tracer) -> Path:
    """Write ``tracer``'s events as a Chrome/Perfetto trace file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer.snapshot())) + "\n")
    return path


# --- merging exported traces ---------------------------------------------------


def _coerce_trace(payload: dict | list) -> list[dict]:
    """Events of a Chrome trace in either the object or array flavour."""
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
    else:
        events = payload
    if not isinstance(events, list):
        raise ValueError("not a Chrome trace: expected traceEvents list")
    return events


def trace_time_bounds(payload: dict | list) -> tuple[float, float] | None:
    """(min, max) timestamp in microseconds over the trace's timed events."""
    stamps = [
        event["ts"]
        for event in _coerce_trace(payload)
        if event.get("ph") != "M" and isinstance(event.get("ts"), (int, float))
    ]
    if not stamps:
        return None
    return min(stamps), max(stamps)


def merge_chrome_traces(
    payloads: Sequence[dict | list],
    *,
    offsets_s: Sequence[float] | None = None,
    align: bool = False,
) -> dict:
    """Merge exported Chrome-trace files into one multi-lane trace.

    This is the offline counterpart of :meth:`Tracer.absorb` for traces
    that were already exported (per-worker dumps, separate runs): the
    same clock-alignment idea, applied to ``ts`` microseconds instead of
    snapshot seconds.

    ``offsets_s[i]`` is added to every timestamp of ``payloads[i]``;
    ``align=True`` instead shifts each trace so its earliest event
    coincides with the first trace's earliest (for dumps whose clocks
    were never synchronised).  Colliding pids between files that name
    *different* processes are remapped to fresh lanes so no two sources
    overwrite each other's swimlane.
    """
    if offsets_s is not None and align:
        raise ValueError("pass offsets_s or align=True, not both")
    if offsets_s is not None and len(offsets_s) != len(payloads):
        raise ValueError(
            f"got {len(offsets_s)} offsets for {len(payloads)} traces"
        )

    anchor: float | None = None
    merged: list[dict] = []
    lane_names: dict[int, str] = {}
    seen_meta: set[tuple[int, str]] = set()
    next_pid = 1 + max(
        (
            int(event.get("pid", 0))
            for payload in payloads
            for event in _coerce_trace(payload)
            if isinstance(event.get("pid"), int)
        ),
        default=0,
    )

    for position, payload in enumerate(payloads):
        events = _coerce_trace(payload)
        offset_us = 0.0
        if offsets_s is not None:
            offset_us = float(offsets_s[position]) * 1e6
        elif align:
            bounds = trace_time_bounds(payload)
            if bounds is not None:
                if anchor is None:
                    anchor = bounds[0]
                else:
                    offset_us = anchor - bounds[0]

        # Lane labels this file declares, for collision detection.
        declared = {
            int(event["pid"]): str(event.get("args", {}).get("name", ""))
            for event in events
            if event.get("ph") == "M" and event.get("name") == "process_name"
        }
        remap: dict[int, int] = {}
        for pid, name in declared.items():
            known = lane_names.get(pid)
            if known is not None and known != name:
                remap[pid] = next_pid
                lane_names[next_pid] = name
                next_pid += 1
            else:
                lane_names[pid] = name

        for event in events:
            exported = dict(event)
            pid = exported.get("pid")
            if isinstance(pid, int) and pid in remap:
                exported["pid"] = remap[pid]
            if exported.get("ph") == "M":
                key = (exported.get("pid", 0), str(exported.get("name", "")))
                if key in seen_meta:
                    continue
                seen_meta.add(key)
            elif offset_us and isinstance(exported.get("ts"), (int, float)):
                exported["ts"] = exported["ts"] + offset_us
            merged.append(exported)
    return {"traceEvents": merged, "displayTimeUnit": "ms"}
