"""Design-space exploration: evaluate design points over a real dataset.

Two layers:

* :class:`FrontEndEvaluator` -- evaluates ONE design point: builds the
  matching front-end chain, streams the whole (truncated, stacked) dataset
  through it, and returns quality (SNR vs clean reference, detection
  accuracy via a pre-trained :class:`~repro.detection.SeizureDetector`)
  together with the Table II power estimate and the Fig. 9 area metric.
  Records are concatenated into one stream so the CS reconstruction runs
  as a single batched FISTA solve across all frames -- the trick that
  makes Python-scale sweeps feasible.

* :class:`DesignSpaceExplorer` -- maps an evaluator over a
  :class:`~repro.core.parameters.ParameterSpace` (or any iterable of
  design points) into an :class:`~repro.core.results.ExplorationResult`.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import time
from collections.abc import Callable, Iterable
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from pathlib import Path

import numpy as np

from repro.core.execution import (
    DEFAULT_POLICY,
    EXECUTORS,
    EvaluationCache,
    ExecutionPolicy,
    SweepCheckpoint,
    WorkerTelemetryConfig,
    _evaluate_batch_chunk,
    _evaluate_chunk,
    _init_worker,
    chunk_pending,
    evaluate_batch_chunk_with,
    evaluate_chunk_with,
    evaluate_one_timed,
    evaluator_fingerprint,
)
from repro.core import flight
from repro.core.resources import ResourceSampler
from repro.core.shm import SharedArrayPool, shm_enabled
from repro.kernels import registry as kernel_registry
from repro.core.telemetry import Telemetry, activate, get_active
from repro.core.parameters import CompositeSpace, ParameterSpace
from repro.core.results import Evaluation, ExplorationResult
from repro.core.signal import Signal
from repro.core.simulator import Simulator
from repro.cs.dictionaries import dct_basis
from repro.cs.reconstruction import Reconstructor
from repro.detection.classifier import SeizureDetector
from repro.metrics.snr import snr_vs_reference
from repro.power.area import chain_area
from repro.power.technology import DesignPoint
from repro.util.constants import MICRO
from repro.util.rng import derive_seed
from repro.util.validation import check_positive

log = logging.getLogger("repro.explorer")


class FrontEndEvaluator:
    """Evaluates design points against a fixed labelled signal corpus.

    Parameters
    ----------
    records:
        Clean sensor-referred records, shape (n_records, n_samples), in
        volts, at ``sample_rate``.  ``n_samples`` should be a multiple of
        the CS frame length in the space being explored, so both
        architectures process identical record lengths.
    labels:
        0/1 seizure labels, or ``None`` when only SNR goals are evaluated.
    sample_rate:
        Record rate, Hz.  Must equal the design points' ``f_sample`` for
        the functional simulation and the power models to describe the
        same system (a tolerance check enforces this).
    detector:
        Trained detector at ``sample_rate``; ``None`` skips accuracy.
    seed:
        Master seed: mismatch realisations and noise streams derive from
        it per design point, so the sweep is reproducible point-by-point.
    reconstructor_factory:
        Optional ``f(point) -> Reconstructor`` override; default is
        batched FISTA on a DCT basis (lam_rel 0.002, 300 iterations) --
        the configuration all paper experiments use.
    chain_transform:
        Optional ``f(chain, point, point_seed) -> chain`` applied to the
        freshly built chain before simulation -- the hook the fault-
        injection layer (:class:`repro.faults.FaultSuite`) uses to wrap
        blocks with non-idealities without the evaluator knowing about
        faults.  Must be picklable for process sweeps, and should expose
        ``fingerprint()`` (or a stable ``describe()``) so transformed and
        clean evaluations never share a cache key.
    """

    def __init__(
        self,
        records: np.ndarray,
        labels: np.ndarray | None,
        sample_rate: float,
        detector: SeizureDetector | None = None,
        seed: int = 0,
        reconstructor_factory: Callable[[DesignPoint], Reconstructor] | None = None,
        chain_transform: Callable[..., object] | None = None,
    ):
        self.records = np.asarray(records, dtype=np.float64)
        if self.records.ndim != 2:
            raise ValueError(f"records must be (n_records, n_samples), got {self.records.shape}")
        self.labels = None if labels is None else np.asarray(labels, dtype=int)
        if self.labels is not None and self.labels.size != self.records.shape[0]:
            raise ValueError(
                f"{self.labels.size} labels for {self.records.shape[0]} records"
            )
        self.sample_rate = check_positive("sample_rate", sample_rate)
        self.detector = detector
        if detector is not None and not detector.is_fitted:
            raise ValueError("detector must be fitted before exploration")
        self.seed = int(seed)
        self.reconstructor_factory = reconstructor_factory or self._default_reconstructor
        self.chain_transform = chain_transform
        self._basis_cache: dict[int, np.ndarray] = {}

    def with_chain_transform(
        self, chain_transform: Callable[..., object] | None
    ) -> "FrontEndEvaluator":
        """Shallow clone evaluating through ``chain_transform``.

        The corpus/labels/detector are shared (they are read-only during
        evaluation), so cloning per fault configuration is cheap -- the
        Monte-Carlo yield runner creates one clone per (severity,
        realisation) cell.
        """
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone.chain_transform = chain_transform
        clone._basis_cache = {}
        # The default factory is a bound method: left bound to the
        # original, pickling the clone would drag the original instance
        # (and its full corpus) along through ``__self__``, defeating
        # the shared-memory corpus substitution in ``__getstate__``.
        factory = clone.__dict__.get("reconstructor_factory")
        if getattr(factory, "__func__", None) is type(self)._default_reconstructor:
            clone.reconstructor_factory = clone._default_reconstructor
        return clone

    def shared_transport(self, pool) -> "FrontEndEvaluator":
        """Clone whose corpus ships to pool workers via shared memory.

        The clone behaves identically in-process (``records`` stays the
        driver's ndarray), but pickling substitutes a
        :class:`~repro.core.shm.SharedArray` handle for the corpus bytes:
        workers attach to the driver's pages read-only instead of
        receiving a copy.  ``pool`` (a
        :class:`~repro.core.shm.SharedArrayPool`) owns the segment and
        must outlive every worker — the process-pool path arms and
        disarms this automatically.
        """
        clone = self.with_chain_transform(self.chain_transform)
        clone._shm_records = pool.share(self.records)
        return clone

    def __getstate__(self):
        state = dict(self.__dict__)
        shm_records = state.pop("_shm_records", None)
        if shm_records is not None:
            state["records"] = shm_records
        return state

    def __setstate__(self, state):
        records = state.get("records")
        if not isinstance(records, np.ndarray):
            from repro.core.shm import SharedArray

            if isinstance(records, SharedArray):
                state = dict(state)
                state["records"] = records.array
        self.__dict__.update(state)

    def _default_reconstructor(self, point: DesignPoint) -> Reconstructor:
        basis = self._basis_cache.get(point.cs_n_phi)
        if basis is None:
            basis = dct_basis(point.cs_n_phi)
            self._basis_cache[point.cs_n_phi] = basis
        return Reconstructor(basis=basis, method="fista", lam_rel=0.002, n_iter=300)

    def fingerprint(self) -> str:
        """Content identity for the on-disk evaluation cache.

        Hashes everything the evaluation outcome depends on besides the
        design point itself: corpus, labels, rate, master seed, detector
        state and the reconstructor configuration.  Custom reconstructor
        factories should expose their own ``fingerprint()``; otherwise
        their qualified name stands in (correct only when the factory is
        stateless).

        Kernel-backend policy: when dispatch is bit-identical to the
        numpy reference (the reference itself, or an ``exact`` backend)
        the fingerprint is backend-invariant, so cached evaluations are
        shared freely across backends.  When a documented-tolerance
        backend is active the fingerprint carries its
        :meth:`~repro.kernels.KernelRegistry.cache_tag`, so its results
        can never be served to (or from) a run on a different backend.
        """
        import repro

        digest = hashlib.sha256()
        # Version-stamp the key: a model change that bumps the package
        # version invalidates cached evaluations.
        digest.update(f"repro={getattr(repro, '__version__', '?')}".encode())
        digest.update(self.records.tobytes())
        digest.update(repr(self.records.shape).encode())
        if self.labels is not None:
            digest.update(self.labels.tobytes())
        digest.update(f"rate={self.sample_rate!r}:seed={self.seed}".encode())
        if self.detector is not None:
            digest.update(pickle.dumps(self.detector))
        factory = self.reconstructor_factory
        method = getattr(factory, "fingerprint", None)
        if callable(method):
            factory_tag = str(method())
        else:
            factory_tag = getattr(factory, "__qualname__", type(factory).__qualname__)
        digest.update(factory_tag.encode())
        transform = self.chain_transform
        if transform is not None:
            tag = getattr(transform, "fingerprint", None)
            if callable(tag):
                transform_tag = str(tag())
            else:
                transform_tag = getattr(
                    transform, "__qualname__", type(transform).__qualname__
                )
            digest.update(f"chain_transform={transform_tag}".encode())
        backend_tag = kernel_registry.cache_tag()
        if backend_tag:
            digest.update(backend_tag.encode())
        return digest.hexdigest()

    # --- single-point evaluation ---------------------------------------------

    def build_point_chain(self, point: DesignPoint):
        """Validate ``point`` against the corpus and build its chain.

        Returns ``(chain, run_seed)``: the fully configured (and, when a
        ``chain_transform`` is set, transformed) block chain plus the seed
        the simulation run must use.  Shared by the scalar path
        (:meth:`evaluate`) and the batched path
        (:class:`repro.core.batch.BatchedEvaluator`), so both simulate
        bit-identical systems.
        """
        # Imported here: repro.blocks imports repro.core (Block base class),
        # so a module-level import would be circular.
        from repro.blocks.chains import (
            build_baseline_chain,
            build_cs_chain,
            build_digital_cs_chain,
        )

        # Symmetric 2 % relative tolerance (math.isclose-style): dividing
        # by only one of the two rates would accept/reject asymmetrically
        # around the nominal rate.
        if abs(point.f_sample - self.sample_rate) > 0.02 * max(
            point.f_sample, self.sample_rate
        ):
            raise ValueError(
                f"records are at {self.sample_rate} Hz but the design point samples "
                f"at {point.f_sample} Hz; resample the corpus to f_sample"
            )
        n_samples = self.records.shape[1]
        point_seed = derive_seed(self.seed, point.describe())
        if point.use_cs:
            if n_samples % point.cs_n_phi:
                raise ValueError(
                    f"record length {n_samples} is not a multiple of N_phi="
                    f"{point.cs_n_phi}"
                )
            builder = (
                build_digital_cs_chain
                if point.cs_architecture == "digital"
                else build_cs_chain
            )
            chain = builder(
                point,
                reconstructor=self.reconstructor_factory(point),
                seed=point_seed,
            )
        else:
            chain = build_baseline_chain(point, seed=point_seed)
        if self.chain_transform is not None:
            chain = self.chain_transform(chain, point, point_seed)
        return chain, derive_seed(point_seed, "run")

    def source_signal(self) -> Signal:
        """The whole corpus concatenated into one simulation stream."""
        return Signal(self.records.reshape(-1), sample_rate=self.sample_rate)

    def score_output(self, point: DesignPoint, output_signal: Signal, power) -> Evaluation:
        """Score one simulated output stream against the clean corpus.

        ``power`` is the chain's :class:`~repro.power.models.PowerReport`.
        Shared by the scalar and batched paths so the metric computation
        cannot diverge between executors.
        """
        n_records = self.records.shape[0]
        output = np.asarray(output_signal.data).reshape(n_records, -1)
        reference = self.records[:, : output.shape[1]]

        snrs = [snr_vs_reference(ref, out) for ref, out in zip(reference, output)]
        metrics: dict[str, float] = {
            "snr_db": float(np.mean(snrs)),
            "power_w": power.total,
            "power_uw": power.total / MICRO,
            "area_units": chain_area(point).units,
        }
        if self.detector is not None and self.labels is not None:
            metrics["accuracy_hard"] = self.detector.accuracy(output, self.labels)
            soft = getattr(self.detector, "soft_accuracy", None)
            if soft is not None:
                # Mean correct-class probability: a continuous, low-variance
                # estimator of population accuracy.  Hard accuracy over R
                # records is quantised at 1/R, which masks the sub-percent
                # differences the paper resolves with 500 records; the soft
                # estimate restores that resolution at reduced scale.
                metrics["accuracy"] = soft(output, self.labels)
            else:
                metrics["accuracy"] = metrics["accuracy_hard"]
        return Evaluation(point=point, metrics=metrics, breakdown=dict(power.blocks))

    def evaluate(self, point: DesignPoint) -> Evaluation:
        """Simulate one design point over the corpus and score it."""
        chain, run_seed = self.build_point_chain(point)
        result = Simulator(chain, point, seed=run_seed).run(
            self.source_signal(), record_taps=False
        )
        return self.score_output(point, result.output, result.power)

    __call__ = evaluate


class DesignSpaceExplorer:
    """Sweeps an evaluator over a design space.

    ``evaluator`` is any callable mapping a DesignPoint to an
    :class:`Evaluation` -- usually a :class:`FrontEndEvaluator`, but tests
    plug in closed-form evaluators to exercise the exploration logic in
    isolation.  For ``executor="process"`` the evaluator must be picklable
    (module-level classes/functions; :class:`FrontEndEvaluator` qualifies).
    """

    def __init__(self, evaluator: Callable[[DesignPoint], Evaluation]):
        self.evaluator = evaluator
        #: :class:`~repro.fleet.FleetReport` of the most recent
        #: ``executor="fleet"`` sweep (``None`` before one runs).
        self.last_fleet_report = None

    def explore(
        self,
        space: ParameterSpace | CompositeSpace | Iterable[DesignPoint],
        base: DesignPoint | None = None,
        name: str = "sweep",
        progress: Callable[[int, Evaluation], None] | None = None,
        *,
        executor: str = "serial",
        n_workers: int | None = None,
        chunk_size: int | None = None,
        cache: EvaluationCache | str | Path | None = None,
        checkpoint: str | Path | None = None,
        strict: bool = False,
        telemetry: Telemetry | None = None,
        policy: ExecutionPolicy | None = None,
        timeout_s: float | None = None,
        retries: int = 0,
        retry_backoff_s: float = 0.5,
        fleet=None,
    ) -> ExplorationResult:
        """Evaluate every point of ``space``.

        Parameters
        ----------
        progress:
            ``progress(index, evaluation)`` is invoked once per completed
            point (used by the example scripts for live logging).  Under a
            parallel executor the invocation order follows *completion*
            order; the returned result is always in grid order.
        executor:
            ``"serial"`` (default), ``"process"``, ``"thread"``,
            ``"batched"`` or ``"fleet"``.  Seeds derive from the master seed and the
            point description, never from evaluation order, so the scalar
            backends return bit-identical results.  ``"batched"`` groups
            points sharing a chain topology and runs each group as one
            vectorised pass through the blocks' ``process_batch`` kernels
            (see :mod:`repro.core.batch`); points whose chains contain a
            kernel-less block -- fault-wrapped chains, custom blocks --
            transparently fall back to the scalar path.  With
            ``n_workers > 1`` the pending points shard over a process
            pool and each worker batches its shard.  ``"fleet"``
            distributes chunks to worker *processes or remote hosts*
            over the lease-based TCP protocol of :mod:`repro.fleet`,
            surviving killed workers, silent leases and socket
            partitions (see the ``fleet`` parameter).
        n_workers:
            Pool size for parallel executors (default ``os.cpu_count()``).
        chunk_size:
            Points per dispatch chunk (default targets ~4 chunks/worker).
        cache:
            :class:`EvaluationCache` or a directory path.  Points whose
            ``(evaluator fingerprint, description)`` key is already on
            disk are not re-evaluated.
        checkpoint:
            JSONL path.  Every completed evaluation is appended; re-running
            with the same path resumes the sweep after an interruption
            without re-evaluating completed points.
        strict:
            When ``False`` (default) a raising design point is recorded as
            a failed :class:`Evaluation` (``error`` set, empty metrics)
            instead of killing the sweep; ``True`` re-raises immediately.
            A raising ``progress`` callback is isolated the same way
            (logged and skipped) so a broken logger cannot kill a sweep
            or poison the parallel completion loop.
        telemetry:
            :class:`~repro.core.telemetry.Telemetry` sink for sweep
            statistics (per-point latency, cache hits/misses, checkpoint
            restores, failures) and live ``explore.progress`` events with
            ETA.  Defaults to the ambient sink
            (:func:`repro.core.telemetry.get_active`), which is a no-op
            unless one was activated.  Progress events follow *completion*
            order under parallel executors; aggregation (the returned
            result, latency stats) is always in grid order.
        policy:
            :class:`~repro.core.execution.ExecutionPolicy` applied to every
            point (wall-clock timeout, bounded retry with exponential
            backoff).  The convenience parameters below build one when
            ``policy`` is not given; passing both is an error.
        timeout_s, retries, retry_backoff_s:
            Shorthand for ``policy=ExecutionPolicy(...)``.  A timed-out
            point becomes a failed :class:`Evaluation` (non-strict) so a
            hung reconstruction cannot stall the sweep; ``retries`` bounds
            re-attempts of *failing* (not timed-out) points.
        fleet:
            :class:`~repro.fleet.FleetOptions` for ``executor="fleet"``
            (endpoint, spawned local workers, lease timeout, chaos
            plans).  Defaults to ``FleetOptions()``: an ephemeral
            localhost port with 3 forked worker processes.  The run's
            :class:`~repro.fleet.FleetReport` lands in
            :attr:`last_fleet_report`, in the ``fleet.report``
            telemetry event, and (via the runner) in the manifest's
            ``fleet`` section.

        Hardened semantics (non-strict):

        * A worker process killed mid-sweep (OOM, segfault) breaks the
          process pool; the pool is resurrected and unfinished chunks are
          re-dispatched.  If it breaks again, dispatch degrades to
          one-point-at-a-time isolation so the next crash is attributed
          to exactly the in-flight point, which is recorded as a failed
          evaluation while every other point completes normally.
        * ``KeyboardInterrupt`` stops dispatch, fills the unevaluated
          slots with failed evaluations (``error`` starting with
          ``"Interrupted"``) *without* checkpointing them -- so a resumed
          run retries them -- and returns the partial result.
        """
        if executor not in EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; choose from {EXECUTORS}")
        if executor == "fleet" and strict:
            raise ValueError(
                "executor='fleet' always isolates point failures on the "
                "workers; strict=True is unsupported"
            )
        if fleet is not None and executor != "fleet":
            raise ValueError("fleet options require executor='fleet'")
        if policy is None:
            policy = ExecutionPolicy(
                timeout_s=timeout_s, retries=retries, retry_backoff_s=retry_backoff_s
            )
        elif timeout_s is not None or retries or retry_backoff_s != 0.5:
            raise ValueError("pass either policy or timeout_s/retries, not both")
        if isinstance(space, (ParameterSpace, CompositeSpace)):
            points = list(space.grid(base))
        else:
            points = list(space)
        if not points:
            raise ValueError("design space produced no points to evaluate")

        cache_store: EvaluationCache | None
        if cache is None or isinstance(cache, EvaluationCache):
            cache_store = cache
        else:
            cache_store = EvaluationCache(cache)
        fingerprint = (
            evaluator_fingerprint(self.evaluator) if cache_store is not None else ""
        )

        ckpt = SweepCheckpoint(checkpoint) if checkpoint is not None else None
        restored: dict[int, Evaluation] = {}
        if ckpt is not None:
            # Take the writer lock before loading: a doomed concurrent
            # sweep sharing the checkpoint path fails here, before any
            # evaluation work is spent.
            ckpt.acquire()
            expected = {i: p.describe() for i, p in enumerate(points)}
            restored = ckpt.load(expected)

        tel = telemetry if telemetry is not None else get_active()
        total = len(points)
        start_time = time.perf_counter()
        completed = 0

        results: list[Evaluation | None] = [None] * total
        pending: list[tuple[int, DesignPoint]] = []

        def finalize(
            index: int,
            evaluation: Evaluation,
            record: bool = True,
            elapsed: float | None = None,
            stats: dict | None = None,
        ) -> None:
            nonlocal completed
            results[index] = evaluation
            completed += 1
            if record and ckpt is not None:
                ckpt.append(index, evaluation)
            if record and cache_store is not None:
                cache_store.put(fingerprint, points[index], evaluation)
            if tel.enabled:
                if elapsed is not None:
                    tel.record("explore.point_seconds", elapsed)
                    tel.observe("explore.point_seconds", elapsed)
                if stats:
                    if stats.get("retries"):
                        tel.count("explore.retries", stats["retries"])
                    if stats.get("timeouts"):
                        tel.count("explore.timeouts", stats["timeouts"])
                    if stats.get("batched"):
                        tel.count("explore.batched_points")
                    if stats.get("batch_fallback"):
                        tel.count("explore.batch_fallback_points")
                if evaluation.error is not None:
                    tel.count("explore.failures")
                run_elapsed = time.perf_counter() - start_time
                rate = completed / run_elapsed if run_elapsed > 0 else 0.0
                tel.event(
                    "explore.progress",
                    done=completed,
                    total=total,
                    elapsed_s=run_elapsed,
                    eta_s=(total - completed) / rate if rate > 0 else None,
                )
            if progress is not None:
                # The callback is user code observing the sweep; isolate
                # its failures like point failures, otherwise one raising
                # logger kills an hours-long (possibly parallel) sweep.
                try:
                    progress(index, evaluation)
                except Exception as error:
                    if strict:
                        raise
                    tel.count("explore.progress_errors")
                    log.warning(
                        "progress callback raised for point %d (%s): %s",
                        index,
                        evaluation.point.describe(),
                        error,
                        exc_info=True,
                    )

        # Sample driver RSS/CPU/threads for the sweep's duration so the
        # manifest's `resources` section covers the coordinating process
        # (fleet workers run their own samplers).
        sampler = ResourceSampler(tel, label="driver") if tel.enabled else None
        try:
            if sampler is not None:
                sampler.start()
            # Install `tel` as the ambient sink for the sweep's duration:
            # the serial and in-process batched paths then feed the
            # simulator/solver instrumentation (block spans, FISTA
            # iteration stats) into the same sink the sweep reports to,
            # which is what makes the exported trace hierarchical.
            with activate(tel), tel.span("explore.total"):
                tel.count("explore.sweeps")
                mirrored: list[tuple[int, Evaluation]] = []
                for index, point in enumerate(points):
                    evaluation = restored.get(index)
                    if evaluation is not None:
                        tel.count("explore.checkpoint_restored")
                        tel.instant("checkpoint.restored", index=index)
                        finalize(index, evaluation, record=False)
                        continue
                    if cache_store is not None:
                        evaluation = cache_store.get(fingerprint, point)
                        if evaluation is not None:
                            tel.count("explore.cache_hits")
                            tel.instant("cache.hit", index=index)
                            # Mirror the hit into the checkpoint so resume
                            # stays complete even without the cache
                            # directory; batched below into ONE durable
                            # write instead of one fsync per hit.
                            if ckpt is not None:
                                mirrored.append((index, evaluation))
                            finalize(index, evaluation, record=False)
                            continue
                        tel.count("explore.cache_misses")
                    pending.append((index, point))
                if mirrored and ckpt is not None:
                    ckpt.append_many(mirrored)

                try:
                    if pending and executor == "serial":
                        for index, point in pending:
                            with tel.span("explore.point", index=index):
                                evaluation, elapsed, stats = evaluate_one_timed(
                                    self.evaluator, point, strict, policy
                                )
                            finalize(index, evaluation, elapsed=elapsed, stats=stats)
                    elif pending and executor == "batched":
                        self._run_batched(
                            pending, n_workers, chunk_size, strict, policy, finalize, tel
                        )
                    elif pending and executor == "fleet":
                        self._run_fleet(
                            pending, n_workers, chunk_size, policy, finalize, tel, fleet
                        )
                    elif pending:
                        self._run_parallel(
                            pending,
                            executor,
                            n_workers,
                            chunk_size,
                            strict,
                            policy,
                            finalize,
                            tel,
                        )
                except KeyboardInterrupt:
                    if strict:
                        raise
                    tel.count("explore.interrupted")
                    log.warning(
                        "sweep interrupted after %d/%d points; returning partial "
                        "results (unevaluated points are marked failed and are "
                        "NOT checkpointed, so a resumed run retries them)",
                        completed,
                        total,
                    )
                    for index, point in enumerate(points):
                        if results[index] is None:
                            # Deliberately bypasses finalize: an interrupted
                            # placeholder must reach neither the checkpoint
                            # nor the cache.
                            results[index] = Evaluation(
                                point=point,
                                metrics={},
                                error="Interrupted: sweep stopped before this "
                                "point was evaluated",
                            )
        finally:
            if sampler is not None:
                sampler.stop()
            if ckpt is not None:
                ckpt.close()
        return ExplorationResult(results, name=name)

    def explore_adaptive(
        self,
        space: ParameterSpace | CompositeSpace | Iterable[DesignPoint],
        base: DesignPoint | None = None,
        name: str = "adaptive",
        *,
        objectives=None,
        schedule=None,
        rungs: int = 3,
        keep_frac: float = 1 / 3,
        epsilon: dict[str, float] | None = None,
        group_by: Callable[[Evaluation], object] | None = None,
        executor: str = "batched",
        progress: Callable[[int, Evaluation], None] | None = None,
        n_workers: int | None = None,
        chunk_size: int | None = None,
        cache: EvaluationCache | str | Path | None = None,
        checkpoint: str | Path | None = None,
        strict: bool = False,
        telemetry: Telemetry | None = None,
        policy: ExecutionPolicy | None = None,
        timeout_s: float | None = None,
        retries: int = 0,
        retry_backoff_s: float = 0.5,
    ):
        """Multi-fidelity successive-halving exploration of ``space``.

        Instead of evaluating every grid point at full fidelity, runs the
        grid through a :class:`~repro.core.adaptive.FidelitySchedule`:
        cheap low-fidelity waves eliminate dominated points, and only the
        survivors reach the full-fidelity evaluator.  Recovers the same
        Pareto front as :meth:`explore` at a fraction of the full-fidelity
        evaluations (see ``docs/extending.md``).

        Parameters (beyond the :meth:`explore` knobs, which all apply
        per rung; ``checkpoint`` expands to one path per rung):

        objectives:
            A :class:`~repro.core.goal.Goal` or sequence of
            :class:`~repro.core.pareto.Objective` steering survivor
            selection.  Default: minimise ``power_uw``, maximise
            ``snr_db``.
        schedule:
            A :class:`~repro.core.adaptive.FidelitySchedule`; default is
            ``FidelitySchedule.geometric(rungs)``.
        rungs:
            Rung count of the default geometric schedule (ignored when
            ``schedule`` is given).
        keep_frac:
            Per-rung survivor floor: at least ``ceil(keep_frac * n)`` of a
            rung's points are promoted (non-dominated layers beyond the
            front), hedging low-fidelity misranking.
        epsilon:
            Optional metric->slack dict widening survivor selection to the
            epsilon-dominance band
            (:func:`~repro.core.pareto.epsilon_nondominated`).
        group_by:
            Optional ``f(evaluation) -> key`` partitioning survivor
            selection (e.g. ``lambda e: e.point.use_cs`` keeps both
            architectures' fronts alive, as Fig. 7 needs).

        Returns an :class:`~repro.core.adaptive.AdaptiveExplorationResult`:
        the full-fidelity evaluations of the final survivors plus the
        per-rung :class:`~repro.core.adaptive.PromotionLedger` under
        ``.ledger``.
        """
        # Imported lazily: repro.core.adaptive imports this module.
        from repro.core.adaptive import FidelitySchedule, run_adaptive
        from repro.core.goal import Goal

        if objectives is None:
            from repro.core.pareto import Objective

            objectives = (
                Objective("power_uw", maximize=False),
                Objective("snr_db", maximize=True),
            )
        elif isinstance(objectives, Goal):
            objectives = objectives.objectives
        if schedule is None:
            schedule = FidelitySchedule.geometric(rungs)
        if isinstance(space, (ParameterSpace, CompositeSpace)):
            points = list(space.grid(base))
        else:
            points = list(space)
        return run_adaptive(
            self,
            points,
            objectives=tuple(objectives),
            schedule=schedule,
            keep_frac=keep_frac,
            epsilon=epsilon,
            group_by=group_by,
            name=name,
            telemetry=telemetry,
            checkpoint=checkpoint,
            executor=executor,
            progress=progress,
            n_workers=n_workers,
            chunk_size=chunk_size,
            cache=cache,
            strict=strict,
            policy=policy,
            timeout_s=timeout_s,
            retries=retries,
            retry_backoff_s=retry_backoff_s,
        )

    def _run_parallel(
        self,
        pending: list[tuple[int, DesignPoint]],
        executor: str,
        n_workers: int | None,
        chunk_size: int | None,
        strict: bool,
        policy: ExecutionPolicy,
        finalize: Callable[..., None],
        tel: Telemetry,
    ) -> None:
        """Fan ``pending`` out over a pool, finalising in completion order."""
        workers = n_workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(pending)))
        chunks = chunk_pending(pending, workers, chunk_size)
        if executor == "process":
            self._run_process_pool(chunks, workers, strict, policy, finalize, tel)
            return
        # Thread workers share the driver's telemetry directly (it is
        # thread-safe); their spans land in per-thread trace lanes.
        pool = ThreadPoolExecutor(max_workers=workers)
        task = partial(
            evaluate_chunk_with, self.evaluator, strict, policy=policy, telemetry=tel
        )
        with pool:
            futures = {pool.submit(task, chunk) for chunk in chunks}
            try:
                while futures:
                    done, futures = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        for index, evaluation, elapsed, stats in future.result():
                            finalize(index, evaluation, elapsed=elapsed, stats=stats)
            except BaseException:
                for future in futures:
                    future.cancel()
                raise

    def _run_fleet(
        self,
        pending: list[tuple[int, DesignPoint]],
        n_workers: int | None,
        chunk_size: int | None,
        policy: ExecutionPolicy,
        finalize: Callable[..., None],
        tel: Telemetry,
        options,
    ) -> None:
        """Distribute ``pending`` over a lease-based worker fleet.

        The coordinator binds an ephemeral (or configured) TCP port,
        optionally forks local worker processes against it, and blocks
        until every point is finalised -- completed by some worker, or
        quarantined by the requeue ladder as a poison point.  Workers
        that die, go silent or partition mid-lease are recovered by the
        coordinator (see :mod:`repro.fleet.coordinator`); the finalize
        hook runs on the driver exactly once per point, so checkpoint,
        cache and progress semantics match every other executor.
        """
        # Imported lazily: the fleet layer depends on execution/telemetry
        # and nothing in the core import graph may depend on it.
        from repro import fleet as fleet_mod

        if options is None:
            options = fleet_mod.FleetOptions()
        hint = options.spawn_workers or n_workers or 4

        def fleet_finalize(index, evaluation, elapsed_s, stats):
            # A worker cache hit reports 0.0s; keep it out of the
            # latency stats like driver-side hits are.
            finalize(
                index,
                evaluation,
                elapsed=elapsed_s if elapsed_s > 0 else None,
                stats=stats,
            )

        coordinator = fleet_mod.FleetCoordinator(
            evaluator_fingerprint(self.evaluator),
            host=options.host,
            port=options.port,
            spec=options.spec,
            lease_timeout_s=options.lease_timeout_s,
            heartbeat_interval_s=options.heartbeat_interval_s,
            max_requeues=options.max_requeues,
            wait_for_workers=options.wait_for_workers,
            policy=policy,
            telemetry=tel,
        )
        host, port = coordinator.endpoint
        log.info("fleet coordinator listening on %s:%d", host, port)
        processes: list = []
        try:
            if options.spawn_workers:
                processes = fleet_mod.spawn_local_workers(
                    options.spawn_workers,
                    coordinator.endpoint,
                    evaluator=self.evaluator,
                    cache_dir=options.worker_cache_dir,
                    plans=tuple(options.chaos_plans),
                )
            self.last_fleet_report = coordinator.run(
                pending,
                fleet_finalize,
                n_workers=hint,
                chunk_size=chunk_size,
                interrupt_after_points=options.interrupt_after_points,
            )
            for process in processes:
                process.join(timeout=10.0)
        finally:
            coordinator.close()
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)

    def _run_batched(
        self,
        pending: list[tuple[int, DesignPoint]],
        n_workers: int | None,
        chunk_size: int | None,
        strict: bool,
        policy: ExecutionPolicy,
        finalize: Callable[..., None],
        tel: Telemetry,
    ) -> None:
        """Dispatch ``pending`` through the batched engine.

        ``n_workers`` omitted or 1 runs one in-process batched pass (the
        common case: batching already amortises the per-point overhead).
        Larger ``n_workers`` composes batching with process parallelism:
        the pending points shard over a process pool -- default one
        contiguous shard per worker, to keep batch groups large -- and
        each worker vectorises its own shard, reusing the scalar pool's
        crash-recovery ladder.
        """
        workers = max(1, min(n_workers or 1, len(pending)))
        if workers == 1:
            for index, evaluation, elapsed, stats in evaluate_batch_chunk_with(
                self.evaluator, strict, pending, policy=policy
            ):
                finalize(index, evaluation, elapsed=elapsed, stats=stats)
            return
        if chunk_size is None:
            chunk_size = -(-len(pending) // workers)
        chunks = chunk_pending(pending, workers, chunk_size)
        tel.count("explore.batch_shards", len(chunks))
        self._run_process_pool(
            chunks, workers, strict, policy, finalize, tel, task=_evaluate_batch_chunk
        )

    def _run_process_pool(
        self,
        chunks: list[list[tuple[int, DesignPoint]]],
        workers: int,
        strict: bool,
        policy: ExecutionPolicy,
        finalize: Callable[..., None],
        tel: Telemetry,
        task: Callable = _evaluate_chunk,
    ) -> None:
        """Process-pool dispatch with crash recovery.

        A worker killed by the OS (OOM, segfault, ``os._exit``) breaks the
        whole :class:`ProcessPoolExecutor`: every in-flight and queued
        future raises :class:`BrokenProcessPool` with no indication of the
        culprit.  Recovery ladder (non-strict):

        1. First break: resurrect the pool and re-dispatch every
           unfinished chunk unchanged -- a transient kill (OOM pressure)
           costs one pool restart and the lost chunks' work.
        2. Further breaks: degrade to one-point-at-a-time dispatch, so a
           deterministic crasher is attributed to exactly the in-flight
           point.  That point is finalised as a failed
           :class:`Evaluation`; the pool is resurrected and every other
           point still completes.

        The ladder terminates: isolation mode removes one point (the
        crasher) per break.  ``strict=True`` re-raises the first break.

        When the driver profiles, each worker runs its own telemetry
        (see :class:`~repro.core.execution.WorkerTelemetryConfig`) and
        every completed chunk carries a drained snapshot home, merged
        here -- so worker-side block/solver instrumentation, counters
        and trace lanes all survive the process boundary.
        """
        worker_config = WorkerTelemetryConfig(
            enabled=tel.enabled, trace=tel.tracer is not None
        )

        # Arm zero-copy corpus transport: workers attach the sample
        # stream through shared memory instead of unpickling a copy.
        # Best-effort — any failure (exotic platform, /dev/shm full)
        # degrades to the plain pickled evaluator.
        original_evaluator = self.evaluator
        shm_pool = None
        if shm_enabled() and hasattr(self.evaluator, "shared_transport"):
            try:
                shm_pool = SharedArrayPool()
                self.evaluator = self.evaluator.shared_transport(shm_pool)
                tel.count("shm.segments", len(shm_pool))
                tel.count("shm.bytes", shm_pool.nbytes)
            except Exception:
                log.warning(
                    "shared-memory transport unavailable; falling back to "
                    "pickled evaluator transport",
                    exc_info=True,
                )
                tel.count("shm.errors")
                if shm_pool is not None:
                    shm_pool.close()
                    shm_pool = None
                self.evaluator = original_evaluator

        def make_pool(pool_workers: int) -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=pool_workers,
                initializer=_init_worker,
                initargs=(self.evaluator, strict, policy, worker_config),
            )

        remaining: dict[int, list[tuple[int, DesignPoint]]] = dict(enumerate(chunks))
        breaks = 0
        try:
            while remaining:
                pool = make_pool(min(workers, len(remaining)))
                try:
                    with pool:
                        futures = {
                            pool.submit(task, chunk): key
                            for key, chunk in remaining.items()
                        }
                        try:
                            while futures:
                                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                                for future in done:
                                    key = futures.pop(future)
                                    rows, worker_snapshot = future.result()
                                    del remaining[key]
                                    if worker_snapshot is not None:
                                        tel.merge(worker_snapshot)
                                    for index, evaluation, elapsed, stats in rows:
                                        finalize(
                                            index, evaluation, elapsed=elapsed, stats=stats
                                        )
                        except BrokenProcessPool:
                            raise
                        except BaseException:
                            for future in futures:
                                future.cancel()
                            raise
                    return
                except BrokenProcessPool:
                    if strict:
                        raise
                    breaks += 1
                    tel.count("explore.pool_restarts")
                    flight.record(
                        "explore.pool_break",
                        breaks=breaks,
                        unfinished_chunks=len(remaining),
                    )
                    log.warning(
                        "process pool broke (a worker died); restarting and "
                        "re-dispatching %d unfinished chunk(s) [break #%d]",
                        len(remaining),
                        breaks,
                    )
                    if breaks >= 2:
                        # Two breaks suggest a deterministic crasher somewhere
                        # in the remaining points: find and excise it.
                        points = [pair for chunk in remaining.values() for pair in chunk]
                        self._isolate_crashers(points, strict, policy, finalize, tel)
                        return
        finally:
            self.evaluator = original_evaluator
            if shm_pool is not None:
                shm_pool.close()

    def _isolate_crashers(
        self,
        points: list[tuple[int, DesignPoint]],
        strict: bool,
        policy: ExecutionPolicy,
        finalize: Callable[..., None],
        tel: Telemetry,
    ) -> None:
        """One-point-at-a-time dispatch: attribute crashes exactly.

        Runs each remaining point as its own single-point chunk with only
        one task in flight, so a :class:`BrokenProcessPool` names the
        culprit unambiguously.  The crasher is finalised as a failed
        evaluation; everything else completes.  Slower than chunked
        dispatch -- but this is the degraded mode after two pool breaks,
        trading throughput for guaranteed completion.
        """
        worker_config = WorkerTelemetryConfig(
            enabled=tel.enabled, trace=tel.tracer is not None
        )
        queue = list(points)
        while queue:
            pool = ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_worker,
                initargs=(self.evaluator, strict, policy, worker_config),
            )
            try:
                with pool:
                    while queue:
                        index, point = queue[0]
                        rows, worker_snapshot = pool.submit(
                            _evaluate_chunk, [(index, point)]
                        ).result()
                        queue.pop(0)
                        if worker_snapshot is not None:
                            tel.merge(worker_snapshot)
                        for idx, evaluation, elapsed, stats in rows:
                            finalize(idx, evaluation, elapsed=elapsed, stats=stats)
            except BrokenProcessPool:
                index, point = queue.pop(0)
                tel.count("explore.pool_restarts")
                tel.count("explore.worker_crashes")
                # The culprit is now known exactly: dump the flight ring
                # so the postmortem carries the events leading up to it.
                flight.dump(
                    "pool-crash",
                    detail="worker process died while evaluating this point",
                    index=index,
                    point=point.describe(),
                )
                log.warning(
                    "worker process died evaluating point %d (%s); recorded as "
                    "a failed evaluation",
                    index,
                    point.describe(),
                )
                finalize(
                    index,
                    Evaluation(
                        point=point,
                        metrics={},
                        error="WorkerCrashed: worker process died (killed or "
                        "crashed) while evaluating this point",
                    ),
                )
