"""Design-space exploration: evaluate design points over a real dataset.

Two layers:

* :class:`FrontEndEvaluator` -- evaluates ONE design point: builds the
  matching front-end chain, streams the whole (truncated, stacked) dataset
  through it, and returns quality (SNR vs clean reference, detection
  accuracy via a pre-trained :class:`~repro.detection.SeizureDetector`)
  together with the Table II power estimate and the Fig. 9 area metric.
  Records are concatenated into one stream so the CS reconstruction runs
  as a single batched FISTA solve across all frames -- the trick that
  makes Python-scale sweeps feasible.

* :class:`DesignSpaceExplorer` -- maps an evaluator over a
  :class:`~repro.core.parameters.ParameterSpace` (or any iterable of
  design points) into an :class:`~repro.core.results.ExplorationResult`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import numpy as np

from repro.core.parameters import CompositeSpace, ParameterSpace
from repro.core.results import Evaluation, ExplorationResult
from repro.core.signal import Signal
from repro.core.simulator import Simulator
from repro.cs.dictionaries import dct_basis
from repro.cs.reconstruction import Reconstructor
from repro.detection.classifier import SeizureDetector
from repro.metrics.snr import snr_vs_reference
from repro.power.area import chain_area
from repro.power.technology import DesignPoint
from repro.util.constants import MICRO
from repro.util.rng import derive_seed
from repro.util.validation import check_positive


class FrontEndEvaluator:
    """Evaluates design points against a fixed labelled signal corpus.

    Parameters
    ----------
    records:
        Clean sensor-referred records, shape (n_records, n_samples), in
        volts, at ``sample_rate``.  ``n_samples`` should be a multiple of
        the CS frame length in the space being explored, so both
        architectures process identical record lengths.
    labels:
        0/1 seizure labels, or ``None`` when only SNR goals are evaluated.
    sample_rate:
        Record rate, Hz.  Must equal the design points' ``f_sample`` for
        the functional simulation and the power models to describe the
        same system (a tolerance check enforces this).
    detector:
        Trained detector at ``sample_rate``; ``None`` skips accuracy.
    seed:
        Master seed: mismatch realisations and noise streams derive from
        it per design point, so the sweep is reproducible point-by-point.
    reconstructor_factory:
        Optional ``f(point) -> Reconstructor`` override; default is
        batched FISTA on a DCT basis (lam_rel 0.002, 300 iterations) --
        the configuration all paper experiments use.
    """

    def __init__(
        self,
        records: np.ndarray,
        labels: np.ndarray | None,
        sample_rate: float,
        detector: SeizureDetector | None = None,
        seed: int = 0,
        reconstructor_factory: Callable[[DesignPoint], Reconstructor] | None = None,
    ):
        self.records = np.asarray(records, dtype=np.float64)
        if self.records.ndim != 2:
            raise ValueError(f"records must be (n_records, n_samples), got {self.records.shape}")
        self.labels = None if labels is None else np.asarray(labels, dtype=int)
        if self.labels is not None and self.labels.size != self.records.shape[0]:
            raise ValueError(
                f"{self.labels.size} labels for {self.records.shape[0]} records"
            )
        self.sample_rate = check_positive("sample_rate", sample_rate)
        self.detector = detector
        if detector is not None and not detector.is_fitted:
            raise ValueError("detector must be fitted before exploration")
        self.seed = int(seed)
        self.reconstructor_factory = reconstructor_factory or self._default_reconstructor
        self._basis_cache: dict[int, np.ndarray] = {}

    def _default_reconstructor(self, point: DesignPoint) -> Reconstructor:
        basis = self._basis_cache.get(point.cs_n_phi)
        if basis is None:
            basis = dct_basis(point.cs_n_phi)
            self._basis_cache[point.cs_n_phi] = basis
        return Reconstructor(basis=basis, method="fista", lam_rel=0.002, n_iter=300)

    # --- single-point evaluation ---------------------------------------------

    def evaluate(self, point: DesignPoint) -> Evaluation:
        """Simulate one design point over the corpus and score it."""
        # Imported here: repro.blocks imports repro.core (Block base class),
        # so a module-level import would be circular.
        from repro.blocks.chains import (
            build_baseline_chain,
            build_cs_chain,
            build_digital_cs_chain,
        )

        if abs(point.f_sample - self.sample_rate) / point.f_sample > 0.02:
            raise ValueError(
                f"records are at {self.sample_rate} Hz but the design point samples "
                f"at {point.f_sample} Hz; resample the corpus to f_sample"
            )
        n_records, n_samples = self.records.shape
        point_seed = derive_seed(self.seed, point.describe())
        if point.use_cs:
            if n_samples % point.cs_n_phi:
                raise ValueError(
                    f"record length {n_samples} is not a multiple of N_phi="
                    f"{point.cs_n_phi}"
                )
            builder = (
                build_digital_cs_chain
                if point.cs_architecture == "digital"
                else build_cs_chain
            )
            chain = builder(
                point,
                reconstructor=self.reconstructor_factory(point),
                seed=point_seed,
            )
        else:
            chain = build_baseline_chain(point, seed=point_seed)

        stream = Signal(self.records.reshape(-1), sample_rate=self.sample_rate)
        result = Simulator(chain, point, seed=derive_seed(point_seed, "run")).run(
            stream, record_taps=False
        )
        output = np.asarray(result.output.data).reshape(n_records, -1)
        reference = self.records[:, : output.shape[1]]

        snrs = [snr_vs_reference(ref, out) for ref, out in zip(reference, output)]
        metrics: dict[str, float] = {
            "snr_db": float(np.mean(snrs)),
            "power_w": result.power.total,
            "power_uw": result.power.total / MICRO,
            "area_units": chain_area(point).units,
        }
        if self.detector is not None and self.labels is not None:
            metrics["accuracy_hard"] = self.detector.accuracy(output, self.labels)
            soft = getattr(self.detector, "soft_accuracy", None)
            if soft is not None:
                # Mean correct-class probability: a continuous, low-variance
                # estimator of population accuracy.  Hard accuracy over R
                # records is quantised at 1/R, which masks the sub-percent
                # differences the paper resolves with 500 records; the soft
                # estimate restores that resolution at reduced scale.
                metrics["accuracy"] = soft(output, self.labels)
            else:
                metrics["accuracy"] = metrics["accuracy_hard"]
        return Evaluation(point=point, metrics=metrics, breakdown=dict(result.power.blocks))

    __call__ = evaluate


class DesignSpaceExplorer:
    """Sweeps an evaluator over a design space.

    ``evaluator`` is any callable mapping a DesignPoint to an
    :class:`Evaluation` -- usually a :class:`FrontEndEvaluator`, but tests
    plug in closed-form evaluators to exercise the exploration logic in
    isolation.
    """

    def __init__(self, evaluator: Callable[[DesignPoint], Evaluation]):
        self.evaluator = evaluator

    def explore(
        self,
        space: ParameterSpace | CompositeSpace | Iterable[DesignPoint],
        base: DesignPoint | None = None,
        name: str = "sweep",
        progress: Callable[[int, Evaluation], None] | None = None,
    ) -> ExplorationResult:
        """Evaluate every point of ``space``.

        ``progress(index, evaluation)`` is invoked after each point (used
        by the example scripts for live logging).
        """
        if isinstance(space, (ParameterSpace, CompositeSpace)):
            points: Iterable[DesignPoint] = space.grid(base)
        else:
            points = space
        evaluations = []
        for index, point in enumerate(points):
            evaluation = self.evaluator(point)
            evaluations.append(evaluation)
            if progress is not None:
                progress(index, evaluation)
        if not evaluations:
            raise ValueError("design space produced no points to evaluate")
        return ExplorationResult(evaluations, name=name)
