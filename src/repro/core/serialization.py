"""Persistence of design points and exploration results (JSON).

Full-scale sweeps take hours; their results should survive the process.
Design points round-trip exactly (every dataclass field, including the
technology constants), so a saved sweep can be re-analysed — Pareto
fronts, constrained searches, figure extraction — without re-simulating.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.core.results import Evaluation, ExplorationResult
from repro.power.technology import DesignPoint, Technology
from repro.util.fsio import atomic_write_text

#: Format marker written into every file (future-proofing).
FORMAT_VERSION = 1


def design_point_to_dict(point: DesignPoint) -> dict:
    """DesignPoint -> plain dict (technology inlined)."""
    payload = dataclasses.asdict(point)
    payload["technology"] = dataclasses.asdict(point.technology)
    return payload


def design_point_from_dict(payload: dict) -> DesignPoint:
    """Inverse of :func:`design_point_to_dict` (exact round-trip)."""
    data = dict(payload)
    tech_payload = data.pop("technology")
    technology = Technology(**tech_payload)
    return DesignPoint(technology=technology, **data)


def evaluation_to_dict(evaluation: Evaluation) -> dict:
    """Evaluation -> plain dict."""
    payload = {
        "point": design_point_to_dict(evaluation.point),
        "metrics": dict(evaluation.metrics),
        "breakdown": dict(evaluation.breakdown),
    }
    if evaluation.error is not None:
        payload["error"] = evaluation.error
    return payload


def evaluation_from_dict(payload: dict) -> Evaluation:
    """Inverse of :func:`evaluation_to_dict`."""
    return Evaluation(
        point=design_point_from_dict(payload["point"]),
        metrics=dict(payload["metrics"]),
        breakdown=dict(payload.get("breakdown", {})),
        error=payload.get("error"),
    )


def save_result(result: ExplorationResult, path: str | Path) -> None:
    """Write an exploration result as JSON (atomic replace).

    The file is staged in the destination directory and moved over the
    target with ``os.replace``: a crash mid-write -- the exact moment an
    hours-long sweep is being persisted -- leaves any previous file
    intact instead of truncating it, honouring this module's durability
    promise.
    """
    payload = {
        "format_version": FORMAT_VERSION,
        "name": result.name,
        "evaluations": [evaluation_to_dict(e) for e in result],
    }
    atomic_write_text(path, json.dumps(payload, indent=1), fsync=True)


def load_result(path: str | Path) -> ExplorationResult:
    """Read an exploration result written by :func:`save_result`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported sweep file version {version!r} (expected {FORMAT_VERSION})"
        )
    evaluations = [evaluation_from_dict(item) for item in payload["evaluations"]]
    return ExplorationResult(evaluations, name=payload.get("name", "sweep"))
