"""The simulator: runs a system on a signal and assembles the joint result.

This is the piece that makes EffiCSense a *pathfinding* framework rather
than just a behavioural simulator: one :meth:`Simulator.run` produces the
processed waveform **and** the per-block power breakdown of the active
design point, so goal functions can trade signal quality against watts
directly (paper Section II, Step 5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.block import SimulationContext
from repro.core.signal import Signal
from repro.core.system import SystemModel
from repro.core.telemetry import get_active
from repro.power.models import PowerReport
from repro.power.technology import DesignPoint


@dataclass
class SimulationResult:
    """Everything one simulation run produced.

    Attributes
    ----------
    output:
        The chain's final signal.
    taps:
        Name -> intermediate signal for every block (plus ``"input"``).
    power:
        Per-block power breakdown collected from the blocks' power models.
    design_point:
        The design point the run was configured with.
    """

    output: Signal
    taps: dict[str, Signal] = field(default_factory=dict)
    power: PowerReport = field(default_factory=lambda: PowerReport({}))
    design_point: DesignPoint | None = None

    @property
    def total_power(self) -> float:
        """Total estimated power in watts."""
        return self.power.total

    def tap(self, name: str) -> Signal:
        """Intermediate signal recorded after block ``name``."""
        try:
            return self.taps[name]
        except KeyError:
            raise KeyError(
                f"no tap named {name!r}; available: {sorted(self.taps)}"
            ) from None


class Simulator:
    """Executes a :class:`SystemModel` under a design point with a seed.

    Parameters
    ----------
    system:
        The block chain to execute.
    design_point:
        Architecture parameters; handed to every block via the context and
        used to evaluate the blocks' power models.
    seed:
        Master seed of the run.  Two runs with the same system, design
        point and seed produce bit-identical outputs.
    """

    def __init__(self, system: SystemModel, design_point: DesignPoint, seed: int = 0):
        self.system = system
        self.design_point = design_point
        self.seed = int(seed)

    def run(self, signal: Signal, record_taps: bool = True) -> SimulationResult:
        """Simulate ``signal`` through the chain.

        Blocks are reset first, so repeated calls replay identically.

        When an ambient :class:`~repro.core.telemetry.Telemetry` is
        active, the run records per-block wall time (``block.<name>``
        spans, via :meth:`SystemModel.run`), total run time and the
        achieved samples/second throughput; disabled telemetry reduces
        every hook to a no-op.
        """
        telemetry = get_active()
        start = time.perf_counter()
        self.system.reset()
        ctx = SimulationContext(seed=self.seed, design_point=self.design_point)
        output = self.system.run(
            signal, ctx, record_taps=record_taps, telemetry=telemetry
        )
        power = self.collect_power()
        if telemetry.enabled:
            elapsed = time.perf_counter() - start
            telemetry.count("simulate.runs")
            telemetry.count("simulate.samples", signal.n_samples)
            telemetry.record("simulate.seconds", elapsed)
            if elapsed > 0:
                telemetry.record("simulate.samples_per_s", signal.n_samples / elapsed)
        return SimulationResult(
            output=output,
            taps=ctx.taps if record_taps else {},
            power=power,
            design_point=self.design_point,
        )

    def collect_power(self) -> PowerReport:
        """Aggregate every block's power model at the active design point."""
        return collect_power(self.system, self.design_point)


def collect_power(system: SystemModel, design_point: DesignPoint) -> PowerReport:
    """Aggregate every block's power model of ``system`` at ``design_point``.

    Shared between :class:`Simulator` and the batched evaluation path
    (:mod:`repro.core.batch`), which collects power per point without
    instantiating a simulator.
    """
    blocks: dict[str, float] = {}
    for block in system.blocks:
        for name, watts in block.power(design_point).items():
            blocks[name] = blocks.get(name, 0.0) + watts
    return PowerReport(blocks)
