"""Sweep execution infrastructure: caching, checkpointing, worker plumbing.

The design-space sweep is the framework's hot path (hundreds of points,
each a full-corpus simulation), so :meth:`DesignSpaceExplorer.explore`
layers three orthogonal mechanisms on top of the bare evaluation loop:

* **Parallel dispatch** -- design points fan out over a process or thread
  pool in index-tagged chunks; results reassemble in grid order, so the
  returned :class:`~repro.core.results.ExplorationResult` is bit-identical
  to a serial sweep regardless of completion order.  Per-point seeds are
  derived from the master seed and the point description (never from the
  evaluation order), which is what makes the reordering safe.
* **On-disk caching** (:class:`EvaluationCache`) -- evaluations persist
  keyed by ``(evaluator fingerprint, point description)``; re-running an
  experiment skips every already-evaluated point.
* **JSONL checkpointing** (:class:`SweepCheckpoint`) -- each completed
  evaluation is appended as one JSON line; a re-run with the same
  checkpoint path resumes mid-sweep after an interruption.

Worker processes receive the evaluator once (pool initializer), not per
task, so the corpus array crosses the process boundary a single time per
worker.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from collections.abc import Callable, Iterable, Sequence
from pathlib import Path

from repro.core.results import Evaluation
from repro.core.serialization import evaluation_from_dict, evaluation_to_dict
from repro.power.technology import DesignPoint

#: Valid values of ``DesignSpaceExplorer.explore(executor=...)``.
EXECUTORS = ("serial", "process", "thread")


def evaluate_one(
    evaluator: Callable[[DesignPoint], Evaluation],
    point: DesignPoint,
    strict: bool,
) -> Evaluation:
    """Evaluate ``point``, isolating failures unless ``strict``.

    A raising design point becomes a failed :class:`Evaluation` (empty
    metrics, ``error`` set) so one pathological grid corner cannot kill an
    hours-long sweep; ``strict=True`` restores fail-fast semantics.
    """
    try:
        return evaluator(point)
    except Exception as error:  # noqa: BLE001 - the isolation boundary
        if strict:
            raise
        return Evaluation(
            point=point,
            metrics={},
            error=f"{type(error).__name__}: {error}",
        )


def evaluate_one_timed(
    evaluator: Callable[[DesignPoint], Evaluation],
    point: DesignPoint,
    strict: bool,
) -> tuple[Evaluation, float]:
    """:func:`evaluate_one` plus its wall time in seconds.

    The timing is measured *inside* the worker so parallel sweeps report
    true per-point latency, not per-chunk completion granularity.
    """
    start = time.perf_counter()
    evaluation = evaluate_one(evaluator, point, strict)
    return evaluation, time.perf_counter() - start


def evaluator_fingerprint(evaluator: object) -> str:
    """Cache identity of an evaluator.

    Prefers an explicit ``fingerprint()`` method (implemented by
    :class:`~repro.core.explorer.FrontEndEvaluator` over its corpus,
    seed and detector); falls back to the qualified class name, which is
    correct only for stateless evaluators -- custom stateful evaluators
    should implement ``fingerprint()``.
    """
    method = getattr(evaluator, "fingerprint", None)
    if callable(method):
        return str(method())
    kind = type(evaluator)
    return f"{kind.__module__}.{kind.__qualname__}"


def chunk_pending(
    pending: Sequence[tuple[int, DesignPoint]],
    n_workers: int,
    chunk_size: int | None = None,
) -> list[list[tuple[int, DesignPoint]]]:
    """Split index-tagged points into dispatch chunks.

    Default sizing aims at ~4 chunks per worker: large enough to amortise
    dispatch overhead, small enough that a slow chunk cannot straggle the
    whole pool.
    """
    if chunk_size is None:
        chunk_size = max(1, -(-len(pending) // (n_workers * 4)))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    items = list(pending)
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


# --- worker-side entry points (must be module-level for pickling) ------------

_WORKER_STATE: dict = {}


def _init_worker(evaluator: Callable, strict: bool) -> None:
    """Process-pool initializer: receive the evaluator once per worker."""
    _WORKER_STATE["evaluator"] = evaluator
    _WORKER_STATE["strict"] = strict


def _evaluate_chunk(
    chunk: list[tuple[int, DesignPoint]],
) -> list[tuple[int, Evaluation, float]]:
    """Evaluate one chunk inside a pool worker (uses initializer state).

    Returns ``(index, evaluation, elapsed_seconds)`` triples; the driver
    aggregates the per-point timings into its telemetry (worker processes
    have no ambient telemetry of their own).
    """
    evaluator = _WORKER_STATE["evaluator"]
    strict = _WORKER_STATE["strict"]
    return [
        (index, *evaluate_one_timed(evaluator, point, strict)) for index, point in chunk
    ]


def evaluate_chunk_with(
    evaluator: Callable,
    strict: bool,
    chunk: list[tuple[int, DesignPoint]],
) -> list[tuple[int, Evaluation, float]]:
    """Evaluate one chunk with an explicit evaluator (thread-pool path)."""
    return [
        (index, *evaluate_one_timed(evaluator, point, strict)) for index, point in chunk
    ]


# --- on-disk evaluation cache ------------------------------------------------


class EvaluationCache:
    """Directory of evaluated design points, keyed by content.

    One JSON file per ``(evaluator fingerprint, point description)`` pair,
    named by the SHA-256 of the key, written atomically (temp file +
    rename) so concurrent sweeps sharing a cache directory never observe
    torn entries.  Failed evaluations are never cached: a crash is worth
    retrying on the next run.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, fingerprint: str, point: DesignPoint) -> Path:
        key = hashlib.sha256(
            f"{fingerprint}\n{point.describe()}".encode()
        ).hexdigest()
        return self.directory / f"{key}.json"

    def get(self, fingerprint: str, point: DesignPoint) -> Evaluation | None:
        """Cached evaluation of ``point``, or ``None``."""
        path = self._path(fingerprint, point)
        try:
            payload = json.loads(path.read_text())
            if payload.get("point_description") != point.describe():
                raise ValueError("cache key collision")
            evaluation = evaluation_from_dict(payload["evaluation"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return evaluation

    def put(self, fingerprint: str, point: DesignPoint, evaluation: Evaluation) -> None:
        """Store one evaluation (no-op for failed evaluations)."""
        if evaluation.error is not None:
            return
        payload = {
            "point_description": point.describe(),
            "evaluation": evaluation_to_dict(evaluation),
        }
        path = self._path(fingerprint, point)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.directory, suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(json.dumps(payload))
            os.replace(handle.name, path)
        except BaseException:
            Path(handle.name).unlink(missing_ok=True)
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))


# --- JSONL checkpointing -----------------------------------------------------


class SweepCheckpoint:
    """Append-only JSONL record of completed evaluations.

    Each line is ``{"index": i, "point": describe, "evaluation": {...}}``.
    Appends are single ``write`` calls followed by flush+fsync, so an
    interrupted sweep loses at most the in-flight line -- which
    :meth:`load` tolerates by skipping unparseable trailing data.
    Resume matches entries against the grid by *both* index and point
    description: a checkpoint from a different grid is ignored rather
    than trusted.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = None

    def load(self, expected: dict[int, str] | None = None) -> dict[int, Evaluation]:
        """Completed evaluations by grid index (last write wins).

        ``expected`` maps grid index -> point description; entries that
        do not match (stale checkpoint, changed grid) are dropped.
        """
        restored: dict[int, Evaluation] = {}
        if not self.path.exists():
            return restored
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    index = int(payload["index"])
                    description = payload["point"]
                    evaluation = evaluation_from_dict(payload["evaluation"])
                except (ValueError, KeyError, TypeError):
                    continue  # torn/corrupt line (e.g. a killed writer)
                if expected is not None and expected.get(index) != description:
                    continue
                restored[index] = evaluation
        return restored

    def append(self, index: int, evaluation: Evaluation) -> None:
        """Record one completed evaluation (atomic single-line append)."""
        self.append_many([(index, evaluation)])

    def append_many(self, entries: Iterable[tuple[int, Evaluation]]) -> None:
        """Record a batch of evaluations with ONE flush + fsync.

        Mirroring cache hits into the checkpoint used to fsync once per
        hit, so resuming a fully-cached 96-point sweep paid 96 fsyncs
        before evaluating anything; batching makes that a single durable
        write.  Crash durability is unchanged for the per-point path
        (``append`` is a one-entry batch).
        """
        lines = [
            json.dumps(
                {
                    "index": index,
                    "point": evaluation.point.describe(),
                    "evaluation": evaluation_to_dict(evaluation),
                }
            )
            + "\n"
            for index, evaluation in entries
        ]
        if not lines:
            return
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a")
        self._handle.write("".join(lines))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the append handle (load remains possible)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
