"""Sweep execution infrastructure: caching, checkpointing, worker plumbing.

The design-space sweep is the framework's hot path (hundreds of points,
each a full-corpus simulation), so :meth:`DesignSpaceExplorer.explore`
layers three orthogonal mechanisms on top of the bare evaluation loop:

* **Parallel dispatch** -- design points fan out over a process or thread
  pool in index-tagged chunks; results reassemble in grid order, so the
  returned :class:`~repro.core.results.ExplorationResult` is bit-identical
  to a serial sweep regardless of completion order.  Per-point seeds are
  derived from the master seed and the point description (never from the
  evaluation order), which is what makes the reordering safe.
* **On-disk caching** (:class:`EvaluationCache`) -- evaluations persist
  keyed by ``(evaluator fingerprint, point description)``; re-running an
  experiment skips every already-evaluated point.
* **JSONL checkpointing** (:class:`SweepCheckpoint`) -- each completed
  evaluation is appended as one JSON line; a re-run with the same
  checkpoint path resumes mid-sweep after an interruption.  A lock-file
  guard makes two concurrent sweeps sharing a checkpoint path fail fast
  instead of interleaving appends into corrupt JSONL.
* **Hardened evaluation** (:class:`ExecutionPolicy`) -- per-point
  wall-clock timeouts (a hung solve becomes a failed
  :class:`Evaluation`, not a stalled sweep) and bounded retry with
  exponential backoff for transient failures.

Worker processes receive the evaluator once (pool initializer), not per
task, so the corpus array crosses the process boundary a single time per
worker.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import random
import tempfile
import threading
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.core import flight
from repro.core.results import Evaluation
from repro.core.serialization import evaluation_from_dict, evaluation_to_dict
from repro.core.telemetry import (
    Telemetry,
    TelemetrySnapshot,
    get_active,
    set_active,
)
from repro.core.tracing import Tracer
from repro.power.technology import DesignPoint
from repro.util.rng import derive_seed

try:  # POSIX advisory locking; the fallback covers other platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

log = logging.getLogger("repro.execution")

#: Valid values of ``DesignSpaceExplorer.explore(executor=...)``.
EXECUTORS = ("serial", "process", "thread", "batched", "fleet")


class EvaluationTimeout(TimeoutError):
    """A design-point evaluation exceeded its wall-clock budget."""


class PointEvaluationError(RuntimeError):
    """Strict-mode failure wrapper that names the offending design point.

    Parallel chunks surface exceptions at chunk granularity; without this
    wrapper a strict sweep's traceback gives no indication of *which*
    design point failed.  The message embeds ``point.describe()`` and the
    original error text, and the instance pickles across process pools.
    """

    def __init__(self, point_description: str, message: str):
        super().__init__(f"design point {point_description}: {message}")
        self.point_description = point_description
        self.message = message

    def __reduce__(self):
        return (type(self), (self.point_description, self.message))


class CheckpointLockedError(RuntimeError):
    """A second sweep tried to append to an already-locked checkpoint."""


@dataclass(frozen=True)
class ExecutionPolicy:
    """Fault-tolerance knobs applied to every point evaluation.

    Parameters
    ----------
    timeout_s:
        Per-point wall-clock ceiling in seconds; ``None`` disables the
        watchdog.  The evaluation runs on a daemon watchdog thread, so a
        timed-out solve is *abandoned* (its thread keeps running until the
        worker process exits) rather than interrupted -- the standard
        pure-Python trade-off; pick a ceiling well above the honest
        per-point latency.
    retries:
        Extra attempts after a failed evaluation (0 = fail immediately).
        Evaluations are deterministic given their seed, so retries pay off
        only for *transient* failures (OOM kills, flaky I/O in custom
        evaluators), which is exactly what they are bounded for.
    retry_backoff_s:
        Base of the exponential backoff between attempts: attempt ``k``
        sleeps up to ``retry_backoff_s * 2**(k-1)`` seconds.  0 disables
        the sleep (used by tests).
    retry_timeouts:
        Whether a timed-out evaluation is retried.  Off by default: each
        abandoned attempt leaks a watchdog thread, and a deterministic
        hang would leak ``retries + 1`` of them.
    retry_jitter:
        Apply seeded *full jitter* to the backoff: attempt ``k`` sleeps
        ``uniform(0, retry_backoff_s * 2**(k-1))`` seconds, with the
        uniform draw seeded from the point description and attempt
        number (:func:`repro.util.rng.derive_seed`), so a fleet of
        workers retrying after a shared transient fault spreads its
        retries instead of stampeding in lockstep -- while any single
        point's backoff schedule stays reproducible.  On by default;
        irrelevant when ``retry_backoff_s`` is 0, so the deterministic
        0-backoff test path is unchanged.
    """

    timeout_s: float | None = None
    retries: int = 0
    retry_backoff_s: float = 0.5
    retry_timeouts: bool = False
    retry_jitter: bool = True

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0 or None, got {self.timeout_s}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )


#: The do-nothing policy: no timeout, no retries (pre-hardening semantics).
DEFAULT_POLICY = ExecutionPolicy()


def retry_delay_s(
    policy: ExecutionPolicy, point: DesignPoint, attempt: int
) -> float:
    """Backoff before retry ``attempt`` (1-based) of ``point``.

    Exponential in the attempt number; with ``policy.retry_jitter`` the
    delay is a full-jitter uniform draw over ``[0, ceiling]`` seeded from
    the point description and attempt, so concurrent workers retrying
    the same transient fault decorrelate deterministically.
    """
    ceiling = policy.retry_backoff_s * 2 ** (attempt - 1)
    if ceiling <= 0:
        return 0.0
    if not policy.retry_jitter:
        return ceiling
    rng = random.Random(derive_seed(attempt, f"retry:{point.describe()}"))
    return rng.uniform(0.0, ceiling)


def _call_with_timeout(
    evaluator: Callable[[DesignPoint], Evaluation],
    point: DesignPoint,
    timeout_s: float,
) -> Evaluation:
    """Run one evaluation under a wall-clock watchdog.

    The evaluation runs on a daemon thread; if it does not finish within
    ``timeout_s`` an :class:`EvaluationTimeout` is raised and the thread
    is abandoned (daemon threads never block process exit).
    """
    outcome: list = []

    def run() -> None:
        try:
            outcome.append((True, evaluator(point)))
        except BaseException as error:  # noqa: BLE001 - relayed to the caller
            outcome.append((False, error))

    watchdog = threading.Thread(target=run, name="repro-eval-watchdog", daemon=True)
    watchdog.start()
    watchdog.join(timeout_s)
    if not outcome:
        raise EvaluationTimeout(
            f"evaluation exceeded the {timeout_s:g}s wall-clock ceiling"
        )
    ok, value = outcome[0]
    if not ok:
        raise value
    return value


def _evaluate_with_policy(
    evaluator: Callable[[DesignPoint], Evaluation],
    point: DesignPoint,
    strict: bool,
    policy: ExecutionPolicy,
) -> tuple[Evaluation, dict]:
    """Evaluate ``point`` under ``policy``; returns (evaluation, stats).

    ``stats`` counts ``{"retries": n, "timeouts": n}`` for this point so
    the driver can aggregate them into its telemetry (worker processes
    have no ambient telemetry of their own).
    """
    stats = {"retries": 0, "timeouts": 0}
    attempt = 0
    while True:
        try:
            if policy.timeout_s is None:
                return evaluator(point), stats
            return _call_with_timeout(evaluator, point, policy.timeout_s), stats
        except EvaluationTimeout as error:
            stats["timeouts"] += 1
            # A timed-out point is exactly the moment a postmortem wants
            # the recent event trail: dump the flight-recorder ring.
            flight.record(
                "point.timeout", point=point.describe(), timeout_s=policy.timeout_s
            )
            flight.dump(
                "point-timeout",
                detail=str(error),
                point=point.describe(),
                timeout_s=policy.timeout_s,
                attempt=attempt,
            )
            failure: Exception = error
            retryable = policy.retry_timeouts
        except Exception as error:  # noqa: BLE001 - the isolation boundary
            failure = error
            retryable = True
        if retryable and attempt < policy.retries:
            attempt += 1
            stats["retries"] += 1
            if policy.retry_backoff_s > 0:
                time.sleep(retry_delay_s(policy, point, attempt))
            continue
        if strict:
            raise PointEvaluationError(
                point.describe(), f"{type(failure).__name__}: {failure}"
            ) from failure
        return (
            Evaluation(
                point=point,
                metrics={},
                error=f"{type(failure).__name__}: {failure}",
            ),
            stats,
        )


def evaluate_one(
    evaluator: Callable[[DesignPoint], Evaluation],
    point: DesignPoint,
    strict: bool,
    policy: ExecutionPolicy = DEFAULT_POLICY,
) -> Evaluation:
    """Evaluate ``point``, isolating failures unless ``strict``.

    A raising design point becomes a failed :class:`Evaluation` (empty
    metrics, ``error`` set) so one pathological grid corner cannot kill an
    hours-long sweep; ``strict=True`` restores fail-fast semantics (and
    wraps the failure in :class:`PointEvaluationError` so the traceback
    names the point).  ``policy`` adds per-point timeouts and bounded
    retry on top; the default policy is a plain single attempt.
    """
    evaluation, _ = _evaluate_with_policy(evaluator, point, strict, policy)
    return evaluation


def evaluate_one_timed(
    evaluator: Callable[[DesignPoint], Evaluation],
    point: DesignPoint,
    strict: bool,
    policy: ExecutionPolicy = DEFAULT_POLICY,
) -> tuple[Evaluation, float, dict]:
    """:func:`evaluate_one` plus wall time and retry/timeout stats.

    The timing is measured *inside* the worker so parallel sweeps report
    true per-point latency, not per-chunk completion granularity; the
    stats dict travels with the result for driver-side aggregation.
    """
    start = time.perf_counter()
    evaluation, stats = _evaluate_with_policy(evaluator, point, strict, policy)
    return evaluation, time.perf_counter() - start, stats


def point_digest(point: DesignPoint) -> str:
    """SHA-256 content digest of one design point (its description).

    ``DesignPoint.describe()`` is the point's canonical identity string
    (seeds, cache keys and checkpoint matching all key on it already);
    hashing it gives a fixed-width address usable in filenames and URLs.
    """
    return hashlib.sha256(point.describe().encode()).hexdigest()


def evaluation_key(fingerprint: str, point: DesignPoint) -> str:
    """Content address of one ``(evaluator, point)`` evaluation.

    The SHA-256 of the evaluator fingerprint and the point description --
    the key :class:`EvaluationCache` has always filed entries under, now
    exposed so the content-addressed result store (:mod:`repro.store`)
    and the serving layer address the *same* artefacts: a sweep manifest
    can reference cache entries directly, and a store lookup never
    re-evaluates what the cache already holds.
    """
    return hashlib.sha256(f"{fingerprint}\n{point.describe()}".encode()).hexdigest()


def evaluator_fingerprint(evaluator: object) -> str:
    """Cache identity of an evaluator.

    Prefers an explicit ``fingerprint()`` method (implemented by
    :class:`~repro.core.explorer.FrontEndEvaluator` over its corpus,
    seed and detector); falls back to the qualified class name, which is
    correct only for stateless evaluators -- custom stateful evaluators
    should implement ``fingerprint()``.
    """
    method = getattr(evaluator, "fingerprint", None)
    if callable(method):
        return str(method())
    kind = type(evaluator)
    return f"{kind.__module__}.{kind.__qualname__}"


def chunk_pending(
    pending: Sequence[tuple[int, DesignPoint]],
    n_workers: int,
    chunk_size: int | None = None,
) -> list[list[tuple[int, DesignPoint]]]:
    """Split index-tagged points into dispatch chunks.

    Default sizing aims at ~4 chunks per worker: large enough to amortise
    dispatch overhead, small enough that a slow chunk cannot straggle the
    whole pool.
    """
    if chunk_size is None:
        chunk_size = max(1, -(-len(pending) // (n_workers * 4)))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    items = list(pending)
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


# --- worker-side entry points (must be module-level for pickling) ------------

_WORKER_STATE: dict = {}


@dataclass(frozen=True)
class WorkerTelemetryConfig:
    """Picklable description of the telemetry a pool worker should run.

    The driver cannot ship its :class:`Telemetry` to workers (locks and
    loggers do not pickle, and a copy would diverge immediately);
    instead it ships this config, each worker builds a *real* local
    telemetry from it, and chunk results carry
    :class:`~repro.core.telemetry.TelemetrySnapshot` deltas home for
    :meth:`Telemetry.merge`.  ``enabled=False`` (the default when the
    driver itself runs disabled telemetry) keeps workers on the
    zero-overhead :class:`NullTelemetry` path.
    """

    enabled: bool = False
    trace: bool = False
    max_events: int = 2_000


def worker_label() -> str:
    """The telemetry lane label of the current process."""
    return f"worker-{os.getpid()}"


def _init_worker(
    evaluator: Callable,
    strict: bool,
    policy: ExecutionPolicy = DEFAULT_POLICY,
    telemetry_config: WorkerTelemetryConfig | None = None,
) -> None:
    """Process-pool initializer: receive the evaluator once per worker.

    When the driver profiles, also build this worker's telemetry (with a
    tracer lane named after the pid) and install it as the worker's
    ambient sink, so the simulator/solver instrumentation deep inside
    evaluations reports here instead of going dark.
    """
    _WORKER_STATE["evaluator"] = evaluator
    _WORKER_STATE["strict"] = strict
    _WORKER_STATE["policy"] = policy
    _WORKER_STATE.pop("telemetry", None)
    if telemetry_config is not None and telemetry_config.enabled:
        tracer = Tracer(label=worker_label()) if telemetry_config.trace else None
        telemetry = Telemetry(max_events=telemetry_config.max_events, tracer=tracer)
        _WORKER_STATE["telemetry"] = telemetry
        set_active(telemetry)


def _worker_snapshot() -> TelemetrySnapshot | None:
    """Drain this worker's telemetry delta (``None`` when not profiling)."""
    telemetry: Telemetry | None = _WORKER_STATE.get("telemetry")
    if telemetry is None:
        return None
    return telemetry.drain_snapshot(label=worker_label())


def _evaluate_chunk(
    chunk: list[tuple[int, DesignPoint]],
) -> tuple[list[tuple[int, Evaluation, float, dict]], TelemetrySnapshot | None]:
    """Evaluate one chunk inside a pool worker (uses initializer state).

    Returns ``(rows, snapshot)``: ``(index, evaluation, elapsed_seconds,
    stats)`` tuples for the driver's reassembly, plus this worker's
    drained telemetry delta (``None`` when the driver is not profiling)
    for :meth:`Telemetry.merge`.
    """
    evaluator = _WORKER_STATE["evaluator"]
    strict = _WORKER_STATE["strict"]
    policy = _WORKER_STATE.get("policy", DEFAULT_POLICY)
    rows = evaluate_chunk_with(
        evaluator, strict, chunk, policy, telemetry=_WORKER_STATE.get("telemetry")
    )
    return rows, _worker_snapshot()


def evaluate_chunk_with(
    evaluator: Callable,
    strict: bool,
    chunk: list[tuple[int, DesignPoint]],
    policy: ExecutionPolicy = DEFAULT_POLICY,
    telemetry: Telemetry | None = None,
) -> list[tuple[int, Evaluation, float, dict]]:
    """Evaluate one chunk with an explicit evaluator (thread-pool path).

    ``telemetry`` (when profiling) wraps the chunk in an
    ``explore.shard`` span and each evaluation in an ``explore.point``
    span, the skeleton of the hierarchical trace; disabled telemetry
    reduces both to shared no-op context managers.
    """
    tel = telemetry if telemetry is not None else get_active()
    rows: list[tuple[int, Evaluation, float, dict]] = []
    with tel.span("explore.shard", points=len(chunk)):
        for index, point in chunk:
            with tel.span("explore.point", index=index):
                rows.append(
                    (index, *evaluate_one_timed(evaluator, point, strict, policy))
                )
    return rows


def evaluate_batch_chunk_with(
    evaluator: Callable,
    strict: bool,
    chunk: list[tuple[int, DesignPoint]],
    policy: ExecutionPolicy = DEFAULT_POLICY,
) -> list[tuple[int, Evaluation, float, dict]]:
    """Evaluate one chunk through the batched engine (scalar fallback inside).

    Imported lazily: :mod:`repro.core.batch` imports this module for the
    policy machinery, so a top-level import would be circular.
    """
    from repro.core.batch import BatchedEvaluator

    return BatchedEvaluator(evaluator).evaluate_chunk(chunk, strict=strict, policy=policy)


def _evaluate_batch_chunk(
    chunk: list[tuple[int, DesignPoint]],
) -> tuple[list[tuple[int, Evaluation, float, dict]], TelemetrySnapshot | None]:
    """Batched analogue of :func:`_evaluate_chunk` (one shard per worker)."""
    tel = _WORKER_STATE.get("telemetry") or get_active()
    with tel.span("explore.shard", points=len(chunk), batched=True):
        rows = evaluate_batch_chunk_with(
            _WORKER_STATE["evaluator"],
            _WORKER_STATE["strict"],
            chunk,
            _WORKER_STATE.get("policy", DEFAULT_POLICY),
        )
    return rows, _worker_snapshot()


# --- on-disk evaluation cache ------------------------------------------------


class EvaluationCache:
    """Directory of evaluated design points, keyed by content.

    One JSON file per ``(evaluator fingerprint, point description)`` pair,
    named by the SHA-256 of the key, written atomically (temp file +
    rename) so concurrent sweeps sharing a cache directory never observe
    torn entries.  Failed evaluations are never cached: a crash is worth
    retrying on the next run.  A corrupt entry (torn write from a killed
    process, disk error, key collision) is quarantined to ``*.corrupt``
    on first read so it is not re-parsed -- and re-missed -- on every
    subsequent run.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def _path(self, fingerprint: str, point: DesignPoint) -> Path:
        return self.directory / f"{evaluation_key(fingerprint, point)}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (best effort) and count it."""
        self.corrupt += 1
        get_active().count("cache.corrupt")
        try:
            os.replace(path, str(path) + ".corrupt")
            log.warning("quarantined corrupt cache entry %s", path.name)
        except OSError:  # pragma: no cover - raced by a concurrent sweep
            pass

    def get(self, fingerprint: str, point: DesignPoint) -> Evaluation | None:
        """Cached evaluation of ``point``, or ``None``."""
        path = self._path(fingerprint, point)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if payload.get("point_description") != point.describe():
                raise ValueError("cache key collision")
            evaluation = evaluation_from_dict(payload["evaluation"])
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return evaluation

    def put(self, fingerprint: str, point: DesignPoint, evaluation: Evaluation) -> None:
        """Store one evaluation (no-op for failed evaluations)."""
        if evaluation.error is not None:
            return
        payload = {
            "point_description": point.describe(),
            "evaluation": evaluation_to_dict(evaluation),
        }
        path = self._path(fingerprint, point)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.directory, suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(json.dumps(payload))
            os.replace(handle.name, path)
        except BaseException:
            Path(handle.name).unlink(missing_ok=True)
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))


# --- JSONL checkpointing -----------------------------------------------------


class SweepCheckpoint:
    """Append-only JSONL record of completed evaluations.

    Each line is ``{"index": i, "point": describe, "evaluation": {...}}``.
    Appends are single ``write`` calls followed by flush+fsync, so an
    interrupted sweep loses at most the in-flight line -- which
    :meth:`load` tolerates by skipping unparseable trailing data.
    Resume matches entries against the grid by *both* index and point
    description: a checkpoint from a different grid is ignored rather
    than trusted.

    A sidecar lock file (``<path>.lock``) guards the writer: two
    concurrent sweeps pointed at the same checkpoint raise
    :class:`CheckpointLockedError` instead of interleaving appends into
    corrupt JSONL.  On POSIX the guard is ``flock`` (released by the
    kernel even if the holder is SIGKILLed, so no stale locks); elsewhere
    it falls back to an exclusive-create file with a stale-pid check.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = None
        self._lock_handle = None

    @property
    def lock_path(self) -> Path:
        return Path(str(self.path) + ".lock")

    def acquire(self) -> None:
        """Take the writer lock, or raise :class:`CheckpointLockedError`.

        Idempotent for the holding instance.  Called automatically on
        first append; the explorer calls it eagerly before loading so a
        doomed concurrent sweep fails before any work is done.
        """
        if self._lock_handle is not None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is not None:
            self._acquire_flock()
        else:  # pragma: no cover - non-POSIX platform
            self._acquire_exclusive_create()

    def _acquire_flock(self) -> None:
        # Loop: the lock file may be unlinked by a releasing holder
        # between our open() and flock(); re-stat after locking and retry
        # if we locked a ghost inode.
        while True:
            handle = open(self.lock_path, "a+")
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.close()
                raise CheckpointLockedError(
                    f"checkpoint {self.path} is locked by another sweep "
                    f"(lock file: {self.lock_path})"
                ) from None
            try:
                if os.fstat(handle.fileno()).st_ino == os.stat(self.lock_path).st_ino:
                    handle.seek(0)
                    handle.truncate()
                    handle.write(f"{os.getpid()}\n")
                    handle.flush()
                    self._lock_handle = handle
                    return
            except OSError:
                pass  # lock file vanished underneath us: retry
            handle.close()

    def _acquire_exclusive_create(self) -> None:  # pragma: no cover - non-POSIX
        try:
            fd = os.open(self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                pid = int(Path(self.lock_path).read_text().strip() or "0")
            except (OSError, ValueError):
                pid = 0
            alive = False
            if pid > 0:
                try:
                    os.kill(pid, 0)
                    alive = True
                except OSError:
                    alive = False
            if alive:
                raise CheckpointLockedError(
                    f"checkpoint {self.path} is locked by pid {pid} "
                    f"(lock file: {self.lock_path})"
                ) from None
            # Stale lock from a dead process: steal it.
            Path(self.lock_path).unlink(missing_ok=True)
            fd = os.open(self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        handle = os.fdopen(fd, "w")
        handle.write(f"{os.getpid()}\n")
        handle.flush()
        self._lock_handle = handle

    def release(self) -> None:
        """Drop the writer lock and remove the lock file."""
        if self._lock_handle is None:
            return
        try:
            Path(self.lock_path).unlink(missing_ok=True)
        except OSError:  # pragma: no cover - permissions race
            pass
        self._lock_handle.close()
        self._lock_handle = None

    def load(self, expected: dict[int, str] | None = None) -> dict[int, Evaluation]:
        """Completed evaluations by grid index (last write wins).

        ``expected`` maps grid index -> point description; entries that
        do not match (stale checkpoint, changed grid) are dropped.
        """
        restored: dict[int, Evaluation] = {}
        if not self.path.exists():
            return restored
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    index = int(payload["index"])
                    description = payload["point"]
                    evaluation = evaluation_from_dict(payload["evaluation"])
                except (ValueError, KeyError, TypeError):
                    continue  # torn/corrupt line (e.g. a killed writer)
                if expected is not None and expected.get(index) != description:
                    continue
                restored[index] = evaluation
        return restored

    def append(self, index: int, evaluation: Evaluation) -> None:
        """Record one completed evaluation (atomic single-line append)."""
        self.append_many([(index, evaluation)])

    def append_many(self, entries: Iterable[tuple[int, Evaluation]]) -> None:
        """Record a batch of evaluations with ONE flush + fsync.

        Mirroring cache hits into the checkpoint used to fsync once per
        hit, so resuming a fully-cached 96-point sweep paid 96 fsyncs
        before evaluating anything; batching makes that a single durable
        write.  Crash durability is unchanged for the per-point path
        (``append`` is a one-entry batch).
        """
        lines = [
            json.dumps(
                {
                    "index": index,
                    "point": evaluation.point.describe(),
                    "evaluation": evaluation_to_dict(evaluation),
                }
            )
            + "\n"
            for index, evaluation in entries
        ]
        if not lines:
            return
        if self._handle is None:
            self.acquire()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a")
        self._handle.write("".join(lines))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the append handle and drop the lock (load still works)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self.release()

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
