"""Block abstraction of the simulation engine.

EffiCSense models a front-end as a chain (or DAG) of *blocks*, mirroring
the plug-and-play Simulink library of the paper.  Each block couples

* a **functional model** -- :meth:`Block.process` transforms an incoming
  :class:`~repro.core.signal.Signal` (vectorised over the whole stream);
* an optional **power model** -- :meth:`Block.power` returns the block's
  estimated consumption in watts for the active design point, so a single
  simulation yields both waveforms and the power breakdown.

Blocks are stateful only through their RNG stream (obtained from the
simulation context so runs are reproducible) and any mismatch realisation
drawn at construction; :meth:`Block.reset` restores a block for an
identical re-run.
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from repro.core.signal import Signal
from repro.util.rng import SeedSequenceRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.power.technology import DesignPoint


class SimulationContext:
    """Shared per-run state handed to every block.

    Carries the seed registry (one independent, replayable noise stream
    per block name), the active design point, and the tap dictionary into
    which the simulator records intermediate signals.
    """

    def __init__(self, seed: int = 0, design_point: "DesignPoint | None" = None):
        self.seeds = SeedSequenceRegistry(seed)
        self.design_point = design_point
        self.taps: dict[str, Signal] = {}

    def rng(self, block_name: str) -> np.random.Generator:
        """Independent deterministic generator for ``block_name``."""
        return self.seeds.rng(block_name)

    def record(self, name: str, signal: Signal) -> None:
        """Store an intermediate signal under ``name``."""
        self.taps[name] = signal


class Block(abc.ABC):
    """Abstract base of every functional block.

    Subclasses implement :meth:`process`; blocks with a Table II power
    model override :meth:`power`.  ``name`` identifies the block in tap
    records, power reports and seed derivation, so it must be unique
    within a system.
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("block name must be non-empty")
        self.name = name

    @abc.abstractmethod
    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        """Transform ``signal``; must not mutate the input's data array."""

    def power(self, point: "DesignPoint") -> dict[str, float]:
        """Power contribution in watts, keyed by report block name.

        Default: the block consumes nothing (ideal models, sources, sinks).
        A block may report several entries (the SAR ADC contributes its
        comparator, logic, DAC and S&H rows separately so Fig. 4/8 can show
        them individually).
        """
        del point
        return {}

    def reset(self) -> None:
        """Clear per-run state.  Default blocks are stateless."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class FunctionBlock(Block):
    """Adapter turning a plain array function into a Block.

    Handy for quick experiments and for users extending the library
    without subclassing::

        rectifier = FunctionBlock("abs", lambda data: np.abs(data))
    """

    def __init__(self, name: str, fn: Callable[[np.ndarray], np.ndarray]):
        super().__init__(name)
        self._fn = fn

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        del ctx
        return signal.replaced(data=np.asarray(self._fn(signal.data), dtype=np.float64))


class PassthroughBlock(Block):
    """Identity block, useful as an explicit tap point in a chain."""

    def process(self, signal: Signal, ctx: SimulationContext) -> Signal:
        del ctx
        return signal

    def process_batch(self, batch, peers, ctxs):
        """Identity over the whole batch (see :mod:`repro.core.batch`)."""
        del peers, ctxs
        return batch
