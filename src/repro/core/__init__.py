"""Simulation engine and pathfinding core.

* :class:`Signal`, :class:`Block`, :class:`SystemModel`, :class:`Simulator`
  -- the Simulink-equivalent block/dataflow engine.
* :class:`ParameterSpace`, goal functions, Pareto extraction and the
  :class:`DesignSpaceExplorer` -- the pathfinding layer (Steps 1-5 of the
  paper's flow).
"""

from repro.core.adaptive import (
    AdaptiveExplorationResult,
    FidelityRung,
    FidelitySchedule,
    PromotionLedger,
    RungReport,
)
from repro.core.block import Block, FunctionBlock, PassthroughBlock, SimulationContext
from repro.core.execution import (
    DEFAULT_POLICY,
    CheckpointLockedError,
    EvaluationCache,
    EvaluationTimeout,
    ExecutionPolicy,
    PointEvaluationError,
    SweepCheckpoint,
    evaluation_key,
    evaluator_fingerprint,
    point_digest,
)
from repro.core.explorer import DesignSpaceExplorer, FrontEndEvaluator
from repro.core.goal import (
    Goal,
    WeightedGoal,
    accuracy_power_goal,
    area_constrained_goal,
    snr_power_goal,
)
from repro.core.parameters import SWEEPABLE_FIELDS, CompositeSpace, ParameterSpace
from repro.core.pareto import (
    Objective,
    best_feasible,
    dominates,
    epsilon_nondominated,
    pareto_front,
)
from repro.core.results import Evaluation, ExplorationResult
from repro.core.serialization import (
    design_point_from_dict,
    design_point_to_dict,
    load_result,
    save_result,
)
from repro.core.flight import FlightRecorder
from repro.core.metrics import Histogram, JsonlEventWriter, write_openmetrics
from repro.core.resources import ResourceSampler, resources_section, sample_resources
from repro.core.signal import DOMAINS, Signal
from repro.core.simulator import SimulationResult, Simulator
from repro.core.system import SystemGraph, SystemModel
from repro.core.telemetry import (
    NULL,
    NullTelemetry,
    RunManifest,
    Telemetry,
    TelemetrySnapshot,
    activate,
    get_active,
    set_active,
)
from repro.core.tracing import Tracer, merge_chrome_traces, write_chrome_trace

__all__ = [
    "AdaptiveExplorationResult",
    "Block",
    "CheckpointLockedError",
    "CompositeSpace",
    "DEFAULT_POLICY",
    "DOMAINS",
    "DesignSpaceExplorer",
    "Evaluation",
    "EvaluationCache",
    "EvaluationTimeout",
    "ExecutionPolicy",
    "ExplorationResult",
    "FidelityRung",
    "FidelitySchedule",
    "FlightRecorder",
    "FrontEndEvaluator",
    "FunctionBlock",
    "Goal",
    "Histogram",
    "JsonlEventWriter",
    "NULL",
    "NullTelemetry",
    "Objective",
    "RunManifest",
    "Telemetry",
    "TelemetrySnapshot",
    "Tracer",
    "ParameterSpace",
    "PassthroughBlock",
    "PointEvaluationError",
    "PromotionLedger",
    "ResourceSampler",
    "RungReport",
    "SWEEPABLE_FIELDS",
    "SimulationContext",
    "SimulationResult",
    "Simulator",
    "SweepCheckpoint",
    "SystemGraph",
    "SystemModel",
    "Signal",
    "WeightedGoal",
    "accuracy_power_goal",
    "activate",
    "get_active",
    "set_active",
    "area_constrained_goal",
    "best_feasible",
    "design_point_from_dict",
    "design_point_to_dict",
    "evaluation_key",
    "evaluator_fingerprint",
    "point_digest",
    "load_result",
    "save_result",
    "dominates",
    "epsilon_nondominated",
    "merge_chrome_traces",
    "pareto_front",
    "resources_section",
    "sample_resources",
    "snr_power_goal",
    "write_chrome_trace",
    "write_openmetrics",
]
