"""Stdlib resource sampling: RSS / CPU / thread-count timelines, no psutil.

A sweep that slows down because a worker is swapping looks identical, in
span stats, to one that slows down because FISTA got harder.  This
module samples process resource usage on a small daemon thread and files
it through the normal observability stack, so the answer is in the same
artifacts as everything else:

* histograms + value stats in :class:`~repro.core.telemetry.Telemetry`
  (``resources.rss_mb``, ``resources.cpu_pct``, ``resources.threads``)
  -- mergeable across processes, so fleet/pool workers get per-worker
  attribution in ``telemetry.workers`` and the manifest;
* Chrome counter ("C") events on the attached tracer, rendering as
  per-process RSS/CPU/thread counter tracks in Perfetto;
* ``resources.sample`` entries on the crash flight recorder ring, so a
  flight artifact shows the resource history leading up to the failure.

Sources, in order of preference: ``/proc/self/status`` (VmRSS, Threads)
and ``/proc/self/stat`` where available, with portable fallbacks from
the :mod:`resource` module (``ru_maxrss``) and
:func:`threading.active_count`.  Stdlib-only by design.
"""

from __future__ import annotations

import os
import resource
import sys
import threading
import time

from repro.core import flight

#: Histogram bounds for resident-set size in MB.
RSS_MB_BUCKETS = (16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0)

#: Histogram bounds for CPU utilisation percent (can exceed 100 with threads).
CPU_PCT_BUCKETS = (5.0, 10.0, 25.0, 50.0, 75.0, 100.0, 200.0, 400.0, 800.0)

DEFAULT_SAMPLE_INTERVAL_S = 0.5

_PROC_STATUS = "/proc/self/status"


def _read_proc_status() -> dict:
    """VmRSS (bytes) and thread count from /proc, or {} off-Linux."""
    out: dict = {}
    try:
        with open(_PROC_STATUS) as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    out["rss_bytes"] = int(line.split()[1]) * 1024
                elif line.startswith("Threads:"):
                    out["threads"] = int(line.split()[1])
    except OSError:
        return {}
    return out


def _max_rss_bytes(ru_maxrss: int) -> int:
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return int(ru_maxrss) if sys.platform == "darwin" else int(ru_maxrss) * 1024


def sample_resources() -> dict:
    """One JSON-ready resource sample for the current process."""
    usage = resource.getrusage(resource.RUSAGE_SELF)
    sample = {
        "t_unix": time.time(),
        "pid": os.getpid(),
        "cpu_user_s": usage.ru_utime,
        "cpu_system_s": usage.ru_stime,
        "max_rss_bytes": _max_rss_bytes(usage.ru_maxrss),
    }
    proc = _read_proc_status()
    sample["rss_bytes"] = proc.get("rss_bytes", sample["max_rss_bytes"])
    sample["threads"] = proc.get("threads", threading.active_count())
    return sample


class ResourceSampler:
    """Daemon thread sampling :func:`sample_resources` into a Telemetry.

    Parameters
    ----------
    telemetry:
        Destination for histograms/value stats; its attached tracer (if
        any) additionally receives Chrome counter events.
    interval_s:
        Sampling period.  Each tick is a handful of syscalls; 0.5 s
        keeps the overhead unmeasurable next to a design-point
        evaluation.
    label:
        Lane attribution for flight-ring entries ("driver",
        "worker-1234", a fleet worker label).
    """

    def __init__(
        self,
        telemetry,
        interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
        label: str = "driver",
    ):
        self.telemetry = telemetry
        self.interval_s = float(interval_s)
        self.label = str(label)
        self.samples = 0
        self.last: dict = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._prev_cpu: float | None = None
        self._prev_wall: float | None = None

    # --- lifecycle ------------------------------------------------------------

    def start(self) -> "ResourceSampler":
        """Take one immediate sample, then sample on a daemon thread."""
        if self._thread is not None:
            return self
        self.tick()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-resources-{self.label}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 2.0) -> None:
        """Stop the thread and take a final sample (so totals are current)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout_s)
            self.tick()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.tick()

    # --- sampling -------------------------------------------------------------

    def tick(self) -> dict:
        """Take one sample and file it everywhere; returns the sample."""
        sample = sample_resources()
        cpu_total = sample["cpu_user_s"] + sample["cpu_system_s"]
        wall = sample["t_unix"]
        cpu_pct = None
        if self._prev_cpu is not None and wall > (self._prev_wall or 0.0):
            elapsed = wall - self._prev_wall
            if elapsed > 1e-6:
                cpu_pct = 100.0 * (cpu_total - self._prev_cpu) / elapsed
        self._prev_cpu, self._prev_wall = cpu_total, wall

        rss_mb = sample["rss_bytes"] / 1e6
        tel = self.telemetry
        tel.observe("resources.rss_mb", rss_mb, bounds=RSS_MB_BUCKETS)
        tel.record("resources.threads", float(sample["threads"]))
        tel.record("resources.cpu_s", cpu_total)
        if cpu_pct is not None:
            tel.observe("resources.cpu_pct", cpu_pct, bounds=CPU_PCT_BUCKETS)

        tracer = getattr(tel, "tracer", None)
        if tracer is not None:
            tracer.counter("resources.rss_mb", value=rss_mb)
            tracer.counter("resources.threads", value=float(sample["threads"]))
            if cpu_pct is not None:
                tracer.counter("resources.cpu_pct", value=cpu_pct)

        flight.record(
            "resources.sample",
            label=self.label,
            rss_mb=round(rss_mb, 3),
            threads=sample["threads"],
            cpu_s=round(cpu_total, 4),
            **({"cpu_pct": round(cpu_pct, 2)} if cpu_pct is not None else {}),
        )
        self.samples += 1
        self.last = sample
        return sample

    def summary(self) -> dict:
        """JSON-ready digest (manifest ``resources.sampler`` section)."""
        return {
            "label": self.label,
            "interval_s": self.interval_s,
            "samples": self.samples,
            "last": dict(self.last),
        }


def resources_section(snapshot: dict, sampler: ResourceSampler | None = None) -> dict:
    """Manifest ``resources`` section from a ``Telemetry.snapshot()`` dict.

    Collects every ``resources.*`` histogram and value-stat family plus
    the per-worker resource digests that :meth:`Telemetry.merge` files
    under ``workers``, so a fleet manifest attributes RSS/CPU per worker.
    """
    section: dict = {
        "histograms": {
            name: body
            for name, body in snapshot.get("histograms", {}).items()
            if name.startswith("resources.")
        },
        "values": {
            name: body
            for name, body in snapshot.get("values", {}).items()
            if name.startswith("resources.")
        },
        "workers": {
            label: digest.get("resources", {})
            for label, digest in snapshot.get("workers", {}).items()
            if digest.get("resources")
        },
    }
    if sampler is not None:
        section["sampler"] = sampler.summary()
    return section
