"""Content-addressed result store: durable, queryable sweep artefacts.

Full-scale sweeps are evaluation-bound -- hours of simulation per grid --
so evaluated results must outlive the process that computed them and be
servable to any number of read-mostly clients without touching the
simulator again.  The store turns sweep results into two kinds of
artefact:

* **Evaluation blobs** -- one JSON file per successful evaluation, named
  by :func:`~repro.core.execution.evaluation_key` (the SHA-256 of the
  evaluator fingerprint and the point description).  This is *exactly*
  the key and payload :class:`~repro.core.execution.EvaluationCache`
  files entries under, so the blob directory doubles as a live
  evaluation cache: a sweep executed with ``cache=store.cache``
  content-addresses its evaluations into the store as it runs, and a
  re-submitted sweep is served from disk without re-simulation.
* **Sweep manifests** -- one JSON file per *named* sweep, recording the
  evaluator fingerprint, the ordered entry list (blob keys for
  successes, inline payloads for failures -- failures are deliberately
  not blobbed, matching the cache's never-cache-failures rule) and a
  content digest over both.  The digest is stable across re-runs of
  identical content, which is what makes it usable as an HTTP ``ETag``
  (see :mod:`repro.serve`).

Every write is atomic (temp file + ``os.replace``,
:mod:`repro.util.fsio`), and the derived ``index.json`` -- the
one-file summary CI uploads as an artifact -- is rebuilt from the
manifest directory under an advisory lock, so concurrent writers
converge instead of clobbering each other.

Layout::

    <root>/
      evaluations/<evaluation_key>.json   # EvaluationCache-compatible blobs
      sweeps/<name>.json                  # one manifest per named sweep
      index.json                          # derived: name -> digest/counts
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.execution import EvaluationCache, evaluation_key
from repro.core.results import Evaluation, ExplorationResult
from repro.core.serialization import evaluation_from_dict, evaluation_to_dict
from repro.core.telemetry import get_active
from repro.util.fsio import FileLock, atomic_write_json

#: Format marker written into every manifest and the index.
STORE_FORMAT_VERSION = 1

#: Legal sweep names: filesystem- and URL-safe, no traversal.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,99}$")


class StoreError(RuntimeError):
    """A store artefact is missing or unreadable."""


def check_sweep_name(name: str) -> str:
    """Validate a sweep name (used as a filename and a URL segment)."""
    if not _NAME_PATTERN.match(name):
        raise ValueError(
            f"invalid sweep name {name!r}: use letters, digits, '.', '_', '-' "
            "(max 100 chars, must start with a letter or digit)"
        )
    return name


@dataclass
class SweepManifest:
    """The named, digest-stamped record of one stored sweep.

    ``entries`` preserves grid order; each entry is either
    ``{"key": <blob key>, "point": <description>}`` (success, payload in
    the blob directory) or ``{"point": <description>, "evaluation":
    {...}}`` (failure, payload inline).  ``digest`` covers fingerprint
    and entries -- not the name or timestamp -- so identical content
    always produces an identical digest/ETag.
    """

    name: str
    fingerprint: str
    entries: list[dict]
    digest: str = ""
    created_unix: float = 0.0
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.digest:
            self.digest = self.compute_digest(self.fingerprint, self.entries)

    @staticmethod
    def compute_digest(fingerprint: str, entries: list[dict]) -> str:
        """Content digest over fingerprint + ordered entries (ETag source)."""
        canonical = json.dumps(
            {"fingerprint": fingerprint, "entries": entries},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    @property
    def keys(self) -> list[str | None]:
        """Blob key per entry, in grid order (``None`` for failures)."""
        return [entry.get("key") for entry in self.entries]

    @property
    def n_evaluations(self) -> int:
        return len(self.entries)

    @property
    def n_failures(self) -> int:
        return sum(1 for entry in self.entries if "evaluation" in entry)

    def summary_dict(self) -> dict:
        """The index row / HTTP manifest view (no entry list)."""
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "digest": self.digest,
            "created_unix": self.created_unix,
            "n_evaluations": self.n_evaluations,
            "n_failures": self.n_failures,
            "meta": dict(self.meta),
        }

    def to_dict(self) -> dict:
        return {
            "format_version": STORE_FORMAT_VERSION,
            **self.summary_dict(),
            "entries": self.entries,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepManifest":
        version = payload.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise StoreError(
                f"unsupported sweep manifest version {version!r} "
                f"(expected {STORE_FORMAT_VERSION})"
            )
        return cls(
            name=str(payload["name"]),
            fingerprint=str(payload["fingerprint"]),
            entries=list(payload["entries"]),
            digest=str(payload.get("digest", "")),
            created_unix=float(payload.get("created_unix", 0.0)),
            meta=dict(payload.get("meta", {})),
        )


class ResultStore:
    """Content-addressed store of evaluations and named sweeps.

    All mutation is crash-safe: blobs and manifests land via atomic
    replace, and the derived index is rebuilt from the manifest directory
    under a file lock, so a killed writer can at worst leave a stale --
    never a torn -- index, repaired by the next write.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.evaluations_dir = self.root / "evaluations"
        self.sweeps_dir = self.root / "sweeps"
        self.index_path = self.root / "index.json"
        self.sweeps_dir.mkdir(parents=True, exist_ok=True)
        #: Live evaluation cache over the blob directory: pass as
        #: ``explore(cache=store.cache)`` and the sweep content-addresses
        #: its successful evaluations into the store while it runs.
        self.cache = EvaluationCache(self.evaluations_dir)

    # --- evaluation blobs -----------------------------------------------------

    def put_evaluation(
        self, fingerprint: str, point, evaluation: Evaluation
    ) -> str | None:
        """Store one evaluation blob; returns its key (``None`` if failed)."""
        if evaluation.error is not None:
            return None
        self.cache.put(fingerprint, point, evaluation)
        return evaluation_key(fingerprint, point)

    def get_evaluation(self, key: str) -> Evaluation | None:
        """Load one evaluation blob by content key, or ``None``."""
        path = self.evaluations_dir / f"{key}.json"
        try:
            payload = json.loads(path.read_text())
            return evaluation_from_dict(payload["evaluation"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # --- sweep manifests ------------------------------------------------------

    def _manifest_path(self, name: str) -> Path:
        return self.sweeps_dir / f"{check_sweep_name(name)}.json"

    def put_sweep(
        self,
        name: str,
        fingerprint: str,
        result: ExplorationResult,
        meta: dict | None = None,
    ) -> SweepManifest:
        """Persist ``result`` as the named sweep (blobs + manifest + index).

        Successful evaluations become content-addressed blobs (idempotent
        -- re-storing identical content rewrites identical files);
        failures are inlined in the manifest so the stored sweep
        round-trips losslessly, failed points included.
        """
        entries: list[dict] = []
        for evaluation in result:
            description = evaluation.point.describe()
            if evaluation.ok:
                key = self.put_evaluation(fingerprint, evaluation.point, evaluation)
                entries.append({"key": key, "point": description})
            else:
                entries.append(
                    {"point": description, "evaluation": evaluation_to_dict(evaluation)}
                )
        manifest = SweepManifest(
            name=name,
            fingerprint=fingerprint,
            entries=entries,
            created_unix=time.time(),
            meta=dict(meta or {}),
        )
        atomic_write_json(self._manifest_path(name), manifest.to_dict(), fsync=True)
        get_active().count("store.sweeps_put")
        self._rebuild_index()
        return manifest

    def get_sweep(self, name: str) -> SweepManifest | None:
        """Manifest of the named sweep, or ``None``."""
        path = self._manifest_path(name)
        if not path.exists():
            return None
        try:
            return SweepManifest.from_dict(json.loads(path.read_text()))
        except (OSError, ValueError, KeyError, TypeError) as error:
            raise StoreError(f"unreadable sweep manifest {path}: {error}") from error

    def delete_sweep(self, name: str) -> bool:
        """Remove the named manifest (blobs stay until :meth:`gc`)."""
        path = self._manifest_path(name)
        existed = path.exists()
        path.unlink(missing_ok=True)
        if existed:
            self._rebuild_index()
        return existed

    def load_result(self, name: str) -> ExplorationResult:
        """Reassemble the named sweep as an :class:`ExplorationResult`.

        Raises :class:`StoreError` when the manifest is missing or any
        referenced blob is gone (e.g. swept away by a gc run racing a
        manifest write from an older store).
        """
        manifest = self.get_sweep(name)
        if manifest is None:
            raise StoreError(
                f"no sweep named {name!r} in {self.root} "
                f"(known: {sorted(self.sweep_names())})"
            )
        evaluations: list[Evaluation] = []
        for entry in manifest.entries:
            if "evaluation" in entry:
                evaluations.append(evaluation_from_dict(entry["evaluation"]))
                continue
            evaluation = self.get_evaluation(entry["key"])
            if evaluation is None:
                raise StoreError(
                    f"sweep {name!r} references missing evaluation blob "
                    f"{entry['key']} (point {entry.get('point')!r})"
                )
            evaluations.append(evaluation)
        return ExplorationResult(evaluations, name=name)

    # --- index and maintenance ------------------------------------------------

    def sweep_names(self) -> list[str]:
        """Names of all stored sweeps (sorted)."""
        return sorted(path.stem for path in self.sweeps_dir.glob("*.json"))

    def index(self) -> dict:
        """The store index (rebuilt from the manifest directory if absent)."""
        if not self.index_path.exists():
            self._rebuild_index()
        try:
            return json.loads(self.index_path.read_text())
        except (OSError, ValueError):
            return self._rebuild_index()

    def _rebuild_index(self) -> dict:
        """Re-derive ``index.json`` from the manifests (locked, atomic).

        Rebuilding from the directory instead of patching the previous
        index makes the operation self-healing: no matter how writers
        interleave, the last rebuild reflects every manifest on disk.
        """
        with FileLock(self.index_path):
            sweeps = {}
            for manifest_name in self.sweep_names():
                try:
                    manifest = self.get_sweep(manifest_name)
                except StoreError:
                    continue  # torn manifest from a foreign writer: skip
                if manifest is not None:
                    sweeps[manifest_name] = manifest.summary_dict()
            payload = {
                "format_version": STORE_FORMAT_VERSION,
                "updated_unix": time.time(),
                "sweeps": sweeps,
            }
            atomic_write_json(self.index_path, payload)
        return payload

    def referenced_keys(self) -> set[str]:
        """Blob keys referenced by at least one stored sweep."""
        keys: set[str] = set()
        for name in self.sweep_names():
            manifest = self.get_sweep(name)
            if manifest is not None:
                keys.update(k for k in manifest.keys if k)
        return keys

    def gc(self) -> list[str]:
        """Remove evaluation blobs no manifest references; returns their keys.

        Because the blob directory doubles as the live evaluation cache,
        gc also evicts cache entries for sweeps never given a name --
        that is the point: ``repro store gc`` reclaims everything not
        reachable from a named sweep.
        """
        referenced = self.referenced_keys()
        removed: list[str] = []
        for path in sorted(self.evaluations_dir.glob("*.json")):
            if path.stem not in referenced:
                path.unlink(missing_ok=True)
                removed.append(path.stem)
        if removed:
            get_active().count("store.blobs_gced", len(removed))
        return removed
