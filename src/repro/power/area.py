"""Capacitor area model (paper Figs. 9 and 10).

In mixed-signal front-ends the silicon area is dominated by capacitors, so
the paper estimates design area as the *total capacitance*, expressed in
multiples of the minimum technology capacitor ``C_u,min``.  This module
implements that accounting for both architectures:

* **Baseline** -- the binary-weighted SAR DAC array (``2^N`` matching-sized
  unit capacitors) plus the kT/C-sized sample-and-hold capacitor.
* **CS** -- the same ADC capacitors, plus ``s`` sampling capacitors and
  ``M`` hold capacitors of the charge-sharing encoder, each sized by the
  stricter of the noise and matching constraints
  (:attr:`DesignPoint.cs_hold_capacitance`).

The CS encoder multiplies the analog capacitance by roughly the number of
hold channels, which is why Fig. 9 shows the CS system costing markedly more
area -- the flip side of its power saving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.technology import DesignPoint


@dataclass(frozen=True)
class AreaReport:
    """Capacitor inventory of one design point.

    All capacitances in farads; ``units`` expresses the paper's Fig. 9
    metric (total capacitance / C_u,min).
    """

    dac_capacitance: float
    sample_capacitance: float
    cs_capacitance: float
    cu_min: float
    cap_density: float

    @property
    def total_capacitance(self) -> float:
        """Total capacitance in farads."""
        return self.dac_capacitance + self.sample_capacitance + self.cs_capacitance

    @property
    def units(self) -> float:
        """Total capacitance in multiples of C_u,min (Fig. 9 y-metric)."""
        return self.total_capacitance / self.cu_min

    @property
    def area_um2(self) -> float:
        """Estimated silicon area of the capacitors in um^2."""
        return self.total_capacitance / self.cap_density

    def breakdown_units(self) -> dict[str, float]:
        """Per-group capacitance in C_u,min units."""
        return {
            "dac": self.dac_capacitance / self.cu_min,
            "sample": self.sample_capacitance / self.cu_min,
            "cs_encoder": self.cs_capacitance / self.cu_min,
        }

    def as_table(self) -> str:
        """Fixed-width text table of the capacitor budget."""
        rows = self.breakdown_units()
        lines = [f"{'group':<12} {'C [x Cu_min]':>14}"]
        for name, units in rows.items():
            lines.append(f"{name:<12} {units:>14.1f}")
        lines.append(f"{'total':<12} {self.units:>14.1f}")
        return "\n".join(lines)


def chain_area(point: DesignPoint) -> AreaReport:
    """Capacitor area estimate for one design point (Fig. 9 metric)."""
    tech = point.technology
    dac_cap = (2.0**point.n_bits) * tech.dac_unit_cap(point.n_bits)
    if point.use_cs:
        # The encoder's C_sample replaces the dedicated S&H capacitor.
        sample_cap = 0.0
        cs_cap = (
            point.cs_sparsity * point.cs_sample_capacitance
            + point.cs_m * point.cs_hold_capacitance
        )
    else:
        sample_cap = point.sampling_capacitance
        cs_cap = 0.0
    return AreaReport(
        dac_capacitance=dac_cap,
        sample_capacitance=sample_cap,
        cs_capacitance=cs_cap,
        cu_min=tech.cu_min,
        cap_density=tech.cap_density,
    )
