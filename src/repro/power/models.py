"""Analytical power models of the circuit blocks (paper Table II).

Each function implements one row of Table II as a closed-form power bound,
parameterised by a :class:`~repro.power.technology.DesignPoint` (which in
turn carries the :class:`~repro.power.technology.Technology` constants of
Table III).  The functions return watts.

Clocking conventions (Table III):

* ``f_sample = 2.1 * BW_in`` -- analog sampling rate at the front-end input.
* ``f_clk = (N+1) * f_sample`` -- SAR clock on the input side.
* With CS enabled the ADC only converts the M compressed measurements of
  every N_phi-sample frame, so ADC-side blocks (S&H, comparator, SAR logic,
  DAC) and the transmitter run at the *compressed* rate
  ``f_out = f_sample * M / N_phi`` with ADC clock ``(N+1) * f_out``, while
  the LNA and CS encoder logic keep running at the input rate.  This is the
  mechanism behind the paper's headline saving: fewer conversions and far
  fewer transmitted bits.

The module also provides :class:`PowerReport` (a per-block breakdown with
pretty-printing, used by Figs. 4 and 8) and :func:`chain_power`, which
assembles the full front-end estimate for either architecture.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.power.technology import DesignPoint
from repro.util.constants import MICRO
from repro.util.validation import check_non_negative, check_positive

#: Activity factor of the SAR control logic (Table II, alpha = 0.4).
SAR_LOGIC_ACTIVITY = 0.4

#: Activity factor of the CS encoder shift register (Table II, alpha = 1).
CS_LOGIC_ACTIVITY = 1.0

#: Gate-equivalents per shift-register cell of the CS encoder (Table II: the
#: ``8 C_logic`` factor -- a D flip-flop plus routing switches).
CS_GATES_PER_CELL = 8


def _adc_rates(point: DesignPoint) -> tuple[float, float]:
    """(f_conv, f_clk_adc): conversion rate and SAR clock of the ADC.

    For the baseline these equal ``f_sample`` and ``f_clk``; with the
    analog (pre-ADC) CS encoder the ADC runs at the compressed output
    rate, while the digital (post-ADC) encoder keeps it at full rate.
    """
    f_conv = point.adc_conversion_rate
    return f_conv, (point.n_bits + 1) * f_conv


# --------------------------------------------------------------------------
# Table II, row by row
# --------------------------------------------------------------------------


def lna_power(point: DesignPoint, c_load: float | None = None) -> float:
    """LNA power (Table II row 1, after Steyaert [16]).

    ``P = V_dd * max(I_gbw, I_slew, I_noise)`` with three current bounds:

    * ``I_gbw   = GBW * 2 pi * C_load / (gm/Id)`` -- gain-bandwidth limit;
      GBW is the closed-loop gain times the LNA bandwidth.
    * ``I_slew  = V_ref * f_clk * C_load`` -- charge delivery to the sampled
      load every clock period.
    * ``I_noise = (NEF / v_n)^2 * 2 pi * 4kT * BW_LNA * V_T`` -- thermal-noise
      limit from the noise-efficiency factor, with ``v_n`` the total
      input-referred noise in Vrms.

    The noise bound dominates at the low-noise end of the paper's sweep and
    is the reason the CS system (which tolerates a higher noise floor) saves
    LNA power.
    """
    tech = point.technology
    if c_load is None:
        c_load = point.lna_load_capacitance
    check_positive("c_load", c_load)

    gbw = point.lna_gain * point.bw_lna
    i_gbw = gbw * 2.0 * math.pi * c_load / tech.gm_over_id
    i_slew = point.v_ref * point.f_clk * c_load
    i_noise = (
        (tech.nef / point.lna_noise_rms) ** 2
        * 2.0
        * math.pi
        * 4.0
        * tech.kt
        * point.bw_lna
        * tech.v_t
    )
    return point.v_dd * max(i_gbw, i_slew, i_noise)


def lna_current_bounds(point: DesignPoint, c_load: float | None = None) -> dict[str, float]:
    """The three LNA current bounds individually (amperes), for diagnostics."""
    tech = point.technology
    if c_load is None:
        c_load = point.lna_load_capacitance
    check_positive("c_load", c_load)
    gbw = point.lna_gain * point.bw_lna
    return {
        "gbw": gbw * 2.0 * math.pi * c_load / tech.gm_over_id,
        "slew": point.v_ref * point.f_clk * c_load,
        "noise": (
            (tech.nef / point.lna_noise_rms) ** 2
            * 2.0
            * math.pi
            * 4.0
            * tech.kt
            * point.bw_lna
            * tech.v_t
        ),
    }


def sample_hold_power(point: DesignPoint) -> float:
    """Sample-and-hold power (Table II row 2, after Sundstrom [14]).

    ``P = V_ref * f_clk * 12 kT 2^(2N) / V_FS^2`` -- the energy of charging
    a sampling capacitor sized so that kT/C noise matches the quantization
    noise of the N-bit converter, delivered once per clock.
    """
    tech = point.technology
    _, f_clk_adc = _adc_rates(point)
    c_s = 12.0 * tech.kt * (4.0**point.n_bits) / (point.v_fs**2)
    return point.v_ref * f_clk_adc * c_s


def comparator_power(
    point: DesignPoint,
    c_load: float | None = None,
    v_eff: float | None = None,
) -> float:
    """Dynamic comparator power (Table II row 3, after Sundstrom [14]).

    ``P = 2 N ln(2) * (f_clk - f_sample) * C_load * V_FS * V_eff``.

    ``(f_clk - f_sample)`` is the number of comparator decisions per second
    (N per conversion).  ``V_eff`` is the input-pair overdrive; with the
    weak-inversion bias of Table III (gm/Id = 20/V) the effective overdrive
    is ``2 / (gm/Id) = 100 mV``, used as the default.  ``C_load`` defaults
    to the technology's logic capacitance (minimum latch regeneration node).
    """
    tech = point.technology
    if c_load is None:
        c_load = tech.c_logic
    if v_eff is None:
        v_eff = 2.0 / tech.gm_over_id
    check_positive("c_load", c_load)
    check_positive("v_eff", v_eff)
    f_conv, f_clk_adc = _adc_rates(point)
    decisions_per_s = f_clk_adc - f_conv
    return 2.0 * point.n_bits * math.log(2.0) * decisions_per_s * c_load * point.v_fs * v_eff


def sar_logic_power(point: DesignPoint) -> float:
    """SAR control-logic power (Table II row 4, after Bos [17]).

    ``P = alpha * (2N+1) * C_logic * V_dd^2 * (f_clk - f_sample)`` with
    activity factor alpha = 0.4: the successive-approximation register plus
    control state machine toggles (2N+1) gate capacitances per bit cycle.
    """
    tech = point.technology
    f_conv, f_clk_adc = _adc_rates(point)
    toggles_per_s = f_clk_adc - f_conv
    return (
        SAR_LOGIC_ACTIVITY
        * (2.0 * point.n_bits + 1.0)
        * tech.c_logic
        * point.v_dd**2
        * toggles_per_s
    )


def dac_power(point: DesignPoint, vin: float | np.ndarray = 0.0) -> float:
    """Binary-weighted SAR DAC switching power (Table II row 5, Saberi [3]).

    ``P = 2^N f_clk C_u / (N+1) * { (5/6 - (1/2)^N - 1/3 (1/2)^(2N)) V_ref^2
    - 1/2 V_in^2 - (1/2)^N V_in V_ref }``

    The bracketed term depends on the sampled input voltage; pass the actual
    ADC input samples (array) to average the signal-dependent part over the
    waveform, or a scalar (default 0 = mid-scale) for a signal-independent
    estimate.  ``C_u`` is the matching-sized unit capacitor from
    :meth:`Technology.dac_unit_cap`.
    """
    tech = point.technology
    n = point.n_bits
    _, f_clk_adc = _adc_rates(point)
    c_u = tech.dac_unit_cap(n)
    vin_arr = np.asarray(vin, dtype=np.float64)
    half_n = 0.5**n
    bracket = (
        (5.0 / 6.0 - half_n - (1.0 / 3.0) * half_n**2) * point.v_ref**2
        - 0.5 * np.mean(vin_arr**2)
        - half_n * float(np.mean(vin_arr)) * point.v_ref
    )
    power = (2.0**n) * f_clk_adc * c_u / (n + 1.0) * float(bracket)
    # The Saberi expression can go slightly negative for inputs near the
    # rails at very low N; switching energy is physically non-negative.
    return max(power, 0.0)


def transmitter_power(point: DesignPoint) -> float:
    """Transmitter / storage power (Table II row 6, refs [4], [12]).

    ``P = f_clk / (N+1) * N * E_bit = f_out * N * E_bit`` -- every
    transmitted word of N bits costs E_bit per bit to radiate or store.
    Both CS variants transmit at the compressed output rate (that rate is
    the whole point of compression); only the analog variant additionally
    converts at the compressed rate.
    """
    tech = point.technology
    return point.output_sample_rate * point.n_bits * tech.e_bit


def cs_encoder_logic_power(point: DesignPoint) -> float:
    """CS encoder digital power (Table II row 7, derived in Section III).

    ``P = alpha * (ceil(log2 N_phi) + 1) * N_phi * 8 C_logic * V_dd^2 * f_clk``
    with alpha = 1: a shift register of N_phi cells (8 gate capacitances per
    cell: flip-flop plus charge-sharing switch drivers) clocked at the input
    SAR clock, plus the (log2 N_phi + 1)-deep control/addressing overhead.

    Returns 0 for non-CS and digital-CS design points (the digital
    comparator has its own model, :func:`digital_cs_encoder_power`).
    """
    if not (point.use_cs and point.cs_architecture == "analog"):
        return 0.0
    tech = point.technology
    depth = math.ceil(math.log2(point.cs_n_phi)) + 1
    return (
        CS_LOGIC_ACTIVITY
        * depth
        * point.cs_n_phi
        * CS_GATES_PER_CELL
        * tech.c_logic
        * point.v_dd**2
        * point.f_clk
    )


#: Switching gate-capacitances toggled per bit of a ripple-carry add
#: (full adder: ~10 equivalent gate loads including carry routing).
DIGITAL_MAC_GATES_PER_BIT = 10

#: Gate-equivalents per accumulator register bit (flip-flop + clocking).
DIGITAL_ACC_GATES_PER_BIT = 8


def digital_cs_encoder_power(point: DesignPoint) -> float:
    """Digital MAC CS encoder power (the Chen [2]-style comparator).

    A post-ADC encoder adds every N-bit sample into ``s`` partial-sum
    accumulators of ``N + ceil(log2 K)`` bits (K = worst-case
    accumulations per measurement, ``ceil(N_phi s / M)``):

    ``P = alpha * s * (adder + accumulator) * C_logic * V_dd^2 * f_sample``
    plus the same sequencing/storage overhead as the analog encoder's
    shift register (the sensing matrix must be stored and scanned either
    way).

    Returns 0 for non-CS or analog-CS design points.
    """
    if not (point.use_cs and point.cs_architecture == "digital"):
        return 0.0
    tech = point.technology
    accumulations = -(-point.cs_n_phi * point.cs_sparsity // point.cs_m)  # ceil
    acc_bits = point.n_bits + max(1, math.ceil(math.log2(max(accumulations, 2))))
    adder_caps = DIGITAL_MAC_GATES_PER_BIT * acc_bits
    register_caps = DIGITAL_ACC_GATES_PER_BIT * acc_bits
    mac = (
        CS_LOGIC_ACTIVITY
        * point.cs_sparsity
        * (adder_caps + register_caps)
        * tech.c_logic
        * point.v_dd**2
        * point.f_sample
    )
    # Matrix storage / sequencing: identical to the analog encoder's
    # shift-register term (Table II row 7).
    depth = math.ceil(math.log2(point.cs_n_phi)) + 1
    sequencing = (
        CS_LOGIC_ACTIVITY
        * depth
        * point.cs_n_phi
        * CS_GATES_PER_CELL
        * tech.c_logic
        * point.v_dd**2
        * point.f_clk
    )
    return mac + sequencing


def leakage_power(point: DesignPoint) -> float:
    """Static leakage of the switch network, ``n_switches * I_leak * V_dd``.

    Baseline: one S&H switch plus 2 per DAC unit-cap bank approximated as
    2N switches.  CS: one switch pair per (C_sample, C_hold) routing point,
    i.e. ``s + M`` switches, plus the ADC's own.  This term is orders of
    magnitude below the dynamic terms at Table III's 1 pA and is included
    for completeness (it matters when sweeping duty-cycled systems).
    """
    tech = point.technology
    n_switches = 1 + 2 * point.n_bits
    if point.use_cs and point.cs_architecture == "analog":
        n_switches += point.cs_sparsity + point.cs_m
    return n_switches * tech.i_leak * point.v_dd


# --------------------------------------------------------------------------
# Aggregation
# --------------------------------------------------------------------------

#: Canonical block ordering used by reports and the Fig. 4 / Fig. 8 plots.
BLOCK_ORDER = (
    "lna",
    "sample_hold",
    "comparator",
    "sar_logic",
    "dac",
    "cs_encoder",
    "transmitter",
    "leakage",
)


@dataclass(frozen=True)
class PowerReport:
    """Per-block power breakdown of one design point, in watts.

    Produced by :func:`chain_power`; consumed by the Fig. 4 sweep, the
    Fig. 8 breakdown comparison, and the explorer's goal functions.
    """

    blocks: Mapping[str, float]

    def __post_init__(self) -> None:
        for name, value in self.blocks.items():
            check_non_negative(f"power of block {name!r}", value)

    @property
    def total(self) -> float:
        """Total chain power in watts."""
        return float(sum(self.blocks.values()))

    @property
    def total_uw(self) -> float:
        """Total chain power in microwatts (the paper's reporting unit)."""
        return self.total / MICRO

    def fraction(self, block: str) -> float:
        """Share of the total consumed by ``block`` (0 if total is 0)."""
        total = self.total
        if total == 0:
            return 0.0
        return self.blocks.get(block, 0.0) / total

    def fractions(self) -> dict[str, float]:
        """All block shares, in canonical order."""
        return {name: self.fraction(name) for name in self.ordered_blocks()}

    def ordered_blocks(self) -> list[str]:
        """Block names in canonical order (known blocks first)."""
        known = [name for name in BLOCK_ORDER if name in self.blocks]
        extra = sorted(set(self.blocks) - set(BLOCK_ORDER))
        return known + extra

    def dominant_block(self) -> str:
        """Name of the block consuming the most power."""
        return max(self.blocks, key=lambda name: self.blocks[name])

    def scaled(self, factor: float) -> "PowerReport":
        """Report with every block scaled by ``factor`` (e.g. duty cycling)."""
        check_non_negative("factor", factor)
        return PowerReport({name: value * factor for name, value in self.blocks.items()})

    def merged(self, other: "PowerReport") -> "PowerReport":
        """Block-wise sum of two reports (e.g. analog + digital partitions)."""
        names = set(self.blocks) | set(other.blocks)
        return PowerReport(
            {name: self.blocks.get(name, 0.0) + other.blocks.get(name, 0.0) for name in names}
        )

    def as_table(self) -> str:
        """Fixed-width text table of the breakdown (uW and % of total)."""
        lines = [f"{'block':<12} {'power [uW]':>12} {'share':>8}"]
        for name in self.ordered_blocks():
            power_uw = self.blocks[name] / MICRO
            lines.append(f"{name:<12} {power_uw:>12.4f} {self.fraction(name):>7.1%}")
        lines.append(f"{'total':<12} {self.total_uw:>12.4f} {'100.0%':>8}")
        return "\n".join(lines)


def chain_power(point: DesignPoint, vin: float | np.ndarray = 0.0) -> PowerReport:
    """Full front-end power estimate for one design point.

    Assembles every Table II model according to the architecture selected
    by ``point.use_cs``.  ``vin`` optionally carries the actual ADC input
    waveform for the signal-dependent DAC term.
    """
    blocks = {
        "lna": lna_power(point),
        "sample_hold": sample_hold_power(point),
        "comparator": comparator_power(point),
        "sar_logic": sar_logic_power(point),
        "dac": dac_power(point, vin=vin),
        "transmitter": transmitter_power(point),
        "leakage": leakage_power(point),
    }
    if point.use_cs:
        if point.cs_architecture == "analog":
            blocks["cs_encoder"] = cs_encoder_logic_power(point)
        else:
            blocks["cs_encoder"] = digital_cs_encoder_power(point)
    return PowerReport(blocks)
