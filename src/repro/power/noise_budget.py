"""Analytical input-referred noise budget of a front-end design point.

Pathfinding tools live and die by quick closed-form sanity checks: before
running a behavioural simulation, a designer wants the input-referred
noise stack and the SNR ceiling it implies.  This module computes that
budget from the same design-point parameters the behavioural models use,
so the two can be cross-checked (the test suite asserts the analytical
SNR matches the simulated chain within fractions of a dB).

Contributors (all expressed as input-referred RMS voltages):

* **LNA thermal noise** -- the swept ``lna_noise_rms`` itself;
* **kT/C sampling noise** -- of the S&H (baseline) or C_hold (CS)
  capacitor, divided by the LNA gain;
* **quantization noise** -- ``LSB / sqrt(12)`` of the N-bit converter,
  input-referred through the gain;
* **comparator noise** -- per-decision RMS mapped to an effective
  per-sample error (approximately one decision's worth, as the final
  LSB decision dominates), input-referred.

Being uncorrelated, the contributions add in power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.power.technology import DesignPoint
from repro.util.constants import db


@dataclass(frozen=True)
class NoiseBudget:
    """Input-referred noise stack of one design point (volts RMS)."""

    lna_noise: float
    ktc_noise: float
    quantization_noise: float
    comparator_noise: float

    @property
    def total(self) -> float:
        """Root-sum-square of all contributors, volts RMS."""
        return math.sqrt(
            self.lna_noise**2
            + self.ktc_noise**2
            + self.quantization_noise**2
            + self.comparator_noise**2
        )

    def contributions(self) -> dict[str, float]:
        """Name -> input-referred RMS volts."""
        return {
            "lna": self.lna_noise,
            "ktc": self.ktc_noise,
            "quantization": self.quantization_noise,
            "comparator": self.comparator_noise,
        }

    def fractions(self) -> dict[str, float]:
        """Name -> share of the total noise *power*."""
        total_power = self.total**2
        if total_power == 0:
            return {name: 0.0 for name in self.contributions()}
        return {
            name: value**2 / total_power for name, value in self.contributions().items()
        }

    def dominant(self) -> str:
        """Largest contributor."""
        return max(self.contributions(), key=lambda k: self.contributions()[k])

    def snr_db(self, signal_rms: float) -> float:
        """Predicted SNR in dB for a signal of ``signal_rms`` volts."""
        if signal_rms <= 0:
            raise ValueError(f"signal_rms must be > 0, got {signal_rms}")
        if self.total == 0:
            return float("inf")
        return db((signal_rms / self.total) ** 2)

    def as_table(self) -> str:
        """Fixed-width text table of the stack (uVrms and power share)."""
        lines = [f"{'source':<14}{'uVrms':>10}{'share':>9}"]
        fractions = self.fractions()
        for name, value in self.contributions().items():
            lines.append(f"{name:<14}{value * 1e6:>10.3f}{fractions[name]:>8.1%}")
        lines.append(f"{'total':<14}{self.total * 1e6:>10.3f}{'100.0%':>9}")
        return "\n".join(lines)


def noise_budget(
    point: DesignPoint,
    comparator_noise_lsb: float = 0.25,
) -> NoiseBudget:
    """Analytical input-referred noise budget of ``point``.

    ``comparator_noise_lsb`` matches the behavioural SAR model's default
    (comparator sigma = LSB/4 per decision); the final-decision error is
    what reaches the code, so one decision's worth is input-referred.
    """
    gain = point.lna_gain
    lsb = point.v_fs / 2.0**point.n_bits

    ktc_at_adc = point.technology.kt_c_noise_rms(
        point.cs_hold_capacitance if point.use_cs and point.cs_architecture == "analog"
        else point.sampling_capacitance
    )
    quantization_at_adc = lsb / math.sqrt(12.0)
    comparator_at_adc = comparator_noise_lsb * lsb

    return NoiseBudget(
        lna_noise=point.lna_noise_rms,
        ktc_noise=ktc_at_adc / gain,
        quantization_noise=quantization_at_adc / gain,
        comparator_noise=comparator_at_adc / gain,
    )


def required_noise_floor(
    point: DesignPoint,
    signal_rms: float,
    target_snr_db: float,
    comparator_noise_lsb: float = 0.25,
) -> float:
    """Largest LNA noise floor (Vrms) still meeting ``target_snr_db``.

    Inverts the budget: subtracts the fixed converter-side contributions
    from the allowed total noise power.  Raises ``ValueError`` when the
    converter alone already violates the target (the designer must raise
    the resolution or the gain first) -- exactly the kind of feasibility
    answer a pathfinding tool should give in closed form.
    """
    if target_snr_db <= 0:
        raise ValueError(f"target_snr_db must be > 0, got {target_snr_db}")
    if signal_rms <= 0:
        raise ValueError(f"signal_rms must be > 0, got {signal_rms}")
    allowed_total_sq = signal_rms**2 / 10.0 ** (target_snr_db / 10.0)
    fixed = noise_budget(point, comparator_noise_lsb=comparator_noise_lsb)
    fixed_sq = fixed.ktc_noise**2 + fixed.quantization_noise**2 + fixed.comparator_noise**2
    if fixed_sq >= allowed_total_sq:
        raise ValueError(
            "converter-side noise alone exceeds the target SNR "
            f"({math.sqrt(fixed_sq) * 1e6:.2f} uVrms fixed vs "
            f"{math.sqrt(allowed_total_sq) * 1e6:.2f} uVrms allowed); "
            "increase n_bits or lna_gain"
        )
    return math.sqrt(allowed_total_sq - fixed_sq)
