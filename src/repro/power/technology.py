"""Technology and design parameters (paper Table III).

The paper extracts a small set of technology constants from a gpdk045
predictive PDK using Cadence Virtuoso and reduces the technology to those
scalars; this module hard-codes the published values.  Where the published
table is ambiguous (units garbled by typesetting) the interpretation is
documented on the field.

Two kinds of objects live here:

* :class:`Technology` -- process constants (logic capacitance, gm/Id,
  capacitor density and matching, leakage, transmit energy, thermal voltage,
  LNA noise-efficiency factor).
* :class:`DesignPoint` -- the per-architecture design parameters that the
  pathfinding explorer sweeps (input bandwidth, ADC resolution, supply,
  sensing-matrix size, LNA noise floor, ...), together with the derived
  clocking relations of Table III (f_sample = 2.1 * BW_in,
  f_clk = (N+1) * f_sample, BW_LNA = 3 * BW_in).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.util.constants import FEMTO, KT_ROOM, MICRO, NANO, PICO
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
)


@dataclass(frozen=True)
class Technology:
    """Extracted technology constants (Table III, top half).

    Attributes
    ----------
    c_logic:
        Capacitance of a minimum logic gate input, in farads (paper: 1 fF).
    gm_over_id:
        Transconductance efficiency of the analog transistors in 1/V
        (paper: 20 /V, weak-inversion biased amplifiers).
    cap_density:
        MIM/MOM capacitor density in F/um^2.  The paper prints
        ".001025 F/um^2" which is dimensionally implausible (it would be a
        millifarad per 1000 um^2); the extracted gpdk045 MIM density is
        ~1 fF/um^2, so we read the entry as 1.025 fF/um^2.
    cu_min:
        Minimum realisable unit capacitor, in farads (paper: 1 fF).
    c_pk:
        Published capacitor matching figure, kept verbatim for provenance
        (paper: 3.48e-9 %/um^2).  The operational mismatch model is
        :meth:`cap_mismatch_sigma`, parameterised by
        ``unit_cap_mismatch_sigma``.
    unit_cap_mismatch_sigma:
        Relative standard deviation of a single minimum unit capacitor
        (sigma of dC/C).  Mismatch of a capacitor built from ``k`` units
        improves as 1/sqrt(k) (Pelgrom scaling with area).  Default 1 %,
        typical for ~1 fF lateral MOM in a 45 nm node.
    i_leak:
        Leakage current of a minimum switch in amperes (paper: 1 pA).
    e_bit:
        Transmit/store energy per bit in joules (paper: 1 nJ, a typical
        low-power radio figure used by refs [4], [12]).
    v_t:
        Thermal voltage kT/q in volts as extracted (paper: 25.27 mV).
    nef:
        LNA noise-efficiency factor (Steyaert/Sansen).  Not tabulated in
        Table III; the reference LNA [16] and modern bio-LNAs sit near
        NEF = 2, which we adopt as the default.
    kt:
        Thermal energy kT in joules at the simulation temperature.
    """

    c_logic: float = 1.0 * FEMTO
    gm_over_id: float = 20.0
    cap_density: float = 1.025 * FEMTO  # F per um^2
    cu_min: float = 1.0 * FEMTO
    c_pk: float = 3.48e-9
    unit_cap_mismatch_sigma: float = 0.01
    i_leak: float = 1.0 * PICO
    e_bit: float = 1.0 * NANO
    v_t: float = 25.27e-3
    nef: float = 2.0
    kt: float = KT_ROOM

    def __post_init__(self) -> None:
        for name in (
            "c_logic",
            "gm_over_id",
            "cap_density",
            "cu_min",
            "i_leak",
            "e_bit",
            "v_t",
            "nef",
            "kt",
        ):
            check_positive(name, getattr(self, name))
        if not 0 <= self.unit_cap_mismatch_sigma < 1:
            raise ValueError(
                "unit_cap_mismatch_sigma must be in [0, 1), got "
                f"{self.unit_cap_mismatch_sigma}"
            )

    # --- derived sizing rules ---------------------------------------------

    def cap_area_um2(self, capacitance: float) -> float:
        """Silicon area in um^2 occupied by ``capacitance`` farads."""
        check_positive("capacitance", capacitance)
        return capacitance / self.cap_density

    def cap_mismatch_sigma(self, capacitance: float) -> float:
        """Relative mismatch sigma of a capacitor of ``capacitance`` farads.

        Pelgrom-style area scaling: a capacitor made of
        ``k = C / cu_min`` unit cells has sigma = sigma_u / sqrt(k).
        Capacitors below one unit cell are clamped to the unit-cell sigma.
        """
        check_positive("capacitance", capacitance)
        units = max(1.0, capacitance / self.cu_min)
        return self.unit_cap_mismatch_sigma / math.sqrt(units)

    def kt_c_noise_rms(self, capacitance: float) -> float:
        """RMS voltage of kT/C sampling noise on ``capacitance`` farads."""
        check_positive("capacitance", capacitance)
        return math.sqrt(self.kt / capacitance)

    def sampling_cap_for_quantization(self, n_bits: int, v_fs: float) -> float:
        """Sampling capacitor sized so kT/C noise sits below quantization noise.

        The paper's S&H power model (Table II) embeds the sizing rule
        ``C_s = 12 kT 2^(2N) / V_FS^2`` -- the capacitance at which kT/C
        noise power equals the quantization noise power
        ``V_FS^2 / (12 * 2^(2N))`` of an N-bit converter.
        """
        n_bits = check_positive_int("n_bits", n_bits)
        check_positive("v_fs", v_fs)
        return 12.0 * self.kt * (4.0**n_bits) / (v_fs**2)

    def dac_unit_cap(self, n_bits: int) -> float:
        """Unit capacitor of an N-bit binary-weighted SAR DAC.

        Sized by the matching requirement that the 3-sigma DNL of the MSB
        transition stays below half an LSB: the MSB capacitor aggregates
        2^(N-1) units, so its relative sigma is
        ``sigma_u / sqrt(2^(N-1))`` and the DNL constraint gives
        ``sigma_u <= sqrt(2^(N-1)) / (3 * 2^N)`` per-unit sigma -- i.e. the
        unit must contain enough minimum cells.  Never smaller than
        ``cu_min``.
        """
        n_bits = check_positive_int("n_bits", n_bits)
        if self.unit_cap_mismatch_sigma == 0:
            return self.cu_min
        # Required per-unit sigma for 3-sigma MSB DNL < 0.5 LSB:
        # sigma_msb = sigma_u / sqrt(2^(N-1)) and 3*sigma_msb*2^N < 0.5.
        sigma_required = math.sqrt(2.0 ** (n_bits - 1)) / (6.0 * 2.0**n_bits)
        units_needed = (self.unit_cap_mismatch_sigma / sigma_required) ** 2
        return max(self.cu_min, units_needed * self.cu_min)

    def hold_cap_for_noise(self, noise_rms_target: float) -> float:
        """Capacitor sized so its kT/C noise is at most ``noise_rms_target``.

        Used for the CS encoder's C_hold: the charge-sharing operation adds
        one kT/C sample per redistribution, so the hold capacitor sets the
        analog noise floor of the compressed measurements.  Never smaller
        than ``cu_min``.
        """
        check_positive("noise_rms_target", noise_rms_target)
        return max(self.cu_min, self.kt / noise_rms_target**2)


#: The gpdk045 extraction used throughout the paper's experiments.
GPDK045 = Technology()


@dataclass(frozen=True)
class DesignPoint:
    """One point in the architectural design space (Table III, bottom half).

    The explorer sweeps instances of this class.  Derived clocking follows
    the paper exactly: ``f_sample = sampling_ratio * bw_in``,
    ``f_clk = (n_bits + 1) * f_sample`` (one cycle per bit plus sampling),
    ``bw_lna = lna_bw_ratio * bw_in``.

    Attributes
    ----------
    bw_in:
        Input signal bandwidth in Hz (paper: 256 Hz for EEG).
    n_bits:
        SAR ADC resolution in bits (paper sweep: 6-8).
    v_dd:
        Supply voltage in volts (paper: 2 V).
    v_fs:
        ADC full-scale range in volts (paper: 2 V, equals v_ref).
    v_ref:
        DAC reference voltage in volts (paper: 2 V).
    lna_noise_rms:
        Total input-referred noise of the LNA in Vrms integrated over the
        LNA bandwidth (paper sweep: 1-20, read as uVrms -- EEG signals are
        tens of uV so this spans "limiting" to "negligible" noise).
    lna_gain:
        LNA voltage gain (linear).  The paper does not tabulate it; a gain
        mapping the ~+-1 mV electrode range onto the 2 V full scale
        (i.e. 1000 V/V, 60 dB) is the natural choice and the default.
    use_cs:
        Whether the front-end includes a CS encoder.
    cs_architecture:
        ``"analog"`` (the paper's passive charge-sharing encoder, before
        the ADC) or ``"digital"`` (Chen [2]-style MAC encoder after a
        full-rate ADC).  The digital variant is the comparator the paper's
        Section III motivates exploring; it keeps the transmitter saving
        but pays full-rate conversion plus digital MAC power.
    cs_m:
        Number of compressed measurements M per frame (paper: 75/150/192).
    cs_n_phi:
        CS frame length N_phi (paper: 384).
    cs_sparsity:
        s of the s-SRBM sensing matrix (paper architecture: 2).
    sampling_ratio:
        f_sample / bw_in (paper: 2.1, slightly above Nyquist).
    lna_bw_ratio:
        bw_lna / bw_in (paper: 3).
    """

    bw_in: float = 256.0
    n_bits: int = 8
    v_dd: float = 2.0
    v_fs: float = 2.0
    v_ref: float = 2.0
    lna_noise_rms: float = 5.0 * MICRO
    lna_gain: float = 1000.0
    use_cs: bool = False
    cs_architecture: str = "analog"
    cs_m: int = 150
    cs_n_phi: int = 384
    cs_sparsity: int = 2
    cs_cap_ratio: float = 8.0
    cs_weight_mismatch_sigma: float = 0.0025
    sampling_ratio: float = 2.1
    lna_bw_ratio: float = 3.0
    technology: Technology = field(default=GPDK045)

    def __post_init__(self) -> None:
        check_positive("bw_in", self.bw_in)
        check_positive_int("n_bits", self.n_bits)
        check_positive("v_dd", self.v_dd)
        check_positive("v_fs", self.v_fs)
        check_positive("v_ref", self.v_ref)
        check_positive("lna_noise_rms", self.lna_noise_rms)
        check_positive("lna_gain", self.lna_gain)
        check_positive("sampling_ratio", self.sampling_ratio)
        check_positive("lna_bw_ratio", self.lna_bw_ratio)
        if self.use_cs:
            if self.cs_architecture not in ("analog", "digital"):
                raise ValueError(
                    "cs_architecture must be 'analog' or 'digital', got "
                    f"{self.cs_architecture!r}"
                )
            check_positive_int("cs_m", self.cs_m)
            check_positive_int("cs_n_phi", self.cs_n_phi)
            check_positive_int("cs_sparsity", self.cs_sparsity)
            check_positive("cs_cap_ratio", self.cs_cap_ratio)
            check_non_negative("cs_weight_mismatch_sigma", self.cs_weight_mismatch_sigma)
            if self.cs_m >= self.cs_n_phi:
                raise ValueError(
                    f"cs_m ({self.cs_m}) must be < cs_n_phi ({self.cs_n_phi}) "
                    "for compression"
                )
            if self.cs_sparsity > self.cs_m:
                raise ValueError(
                    f"cs_sparsity ({self.cs_sparsity}) cannot exceed cs_m ({self.cs_m})"
                )

    # --- derived quantities (Table III relations) ---------------------------

    @property
    def f_sample(self) -> float:
        """ADC sample rate in Hz: sampling_ratio * bw_in."""
        return self.sampling_ratio * self.bw_in

    @property
    def f_clk(self) -> float:
        """SAR clock in Hz: (N+1) cycles per conversion."""
        return (self.n_bits + 1) * self.f_sample

    @property
    def bw_lna(self) -> float:
        """LNA bandwidth in Hz: lna_bw_ratio * bw_in."""
        return self.lna_bw_ratio * self.bw_in

    @property
    def compression_ratio(self) -> float:
        """N_phi / M when CS is enabled, 1.0 otherwise (>= 1)."""
        if not self.use_cs:
            return 1.0
        return self.cs_n_phi / self.cs_m

    @property
    def output_sample_rate(self) -> float:
        """Rate at which digitised words leave the front-end, in Hz.

        Without CS every analog sample is digitised; with CS only M out of
        every N_phi samples reach the ADC/transmitter.
        """
        return self.f_sample / self.compression_ratio

    @property
    def adc_conversion_rate(self) -> float:
        """Conversions per second performed by the SAR ADC.

        The analog (pre-ADC) CS encoder lets the ADC run at the compressed
        rate; the digital variant must digitise every input sample.
        """
        if self.use_cs and self.cs_architecture == "digital":
            return self.f_sample
        return self.output_sample_rate

    @property
    def bit_rate(self) -> float:
        """Transmitted bits per second."""
        return self.output_sample_rate * self.n_bits

    @property
    def sampling_capacitance(self) -> float:
        """Baseline S&H capacitor, sized for quantization-matched kT/C noise."""
        return max(
            self.technology.cu_min,
            self.technology.sampling_cap_for_quantization(self.n_bits, self.v_fs),
        )

    @property
    def cs_hold_capacitance(self) -> float:
        """CS encoder hold capacitor C_hold, in farads.

        Sized by the stricter of two constraints:

        * **Noise** -- kT/C noise of the passive charge-sharing network must
          stay at or below the ADC quantization noise (same rule as the
          baseline S&H capacitor).
        * **Matching** -- the charge-sharing weights are capacitor ratios;
          their relative sigma must not exceed ``cs_weight_mismatch_sigma``
          or the effective sensing matrix departs from the one used for
          reconstruction.  Pelgrom scaling gives the required multiple of
          unit cells.
        """
        tech = self.technology
        noise_sized = tech.sampling_cap_for_quantization(self.n_bits, self.v_fs)
        if self.cs_weight_mismatch_sigma > 0 and tech.unit_cap_mismatch_sigma > 0:
            units = (tech.unit_cap_mismatch_sigma / self.cs_weight_mismatch_sigma) ** 2
            match_sized = units * tech.cu_min
        else:
            match_sized = tech.cu_min
        return max(tech.cu_min, noise_sized, match_sized)

    @property
    def cs_sample_capacitance(self) -> float:
        """CS encoder sampling capacitor C_sample.

        ``C_hold / cs_cap_ratio`` (never below the minimum unit capacitor).
        The ratio sets the charge-sharing geometry of paper Eq. 1: each
        redistribution multiplies previously stored charge by
        ``C_hold / (C_sample + C_hold)``, so a larger ratio gives flatter
        accumulation weights at the cost of smaller per-sample gain.
        """
        return max(self.technology.cu_min, self.cs_hold_capacitance / self.cs_cap_ratio)

    @property
    def lna_load_capacitance(self) -> float:
        """Capacitive load seen by the LNA output.

        For the baseline chain this is the ADC S&H capacitor; with the CS
        front-end the paper takes the LNA load equal to the C_hold value of
        the encoder (Section III: "the load of the LNA should also be taken
        equal to the C_hold value") -- the conservative choice, since the
        amplifier must settle the charge-sharing network.  The digital CS
        variant keeps the baseline's S&H load (its encoder sits after the
        ADC).
        """
        if self.use_cs and self.cs_architecture == "analog":
            return self.cs_hold_capacitance
        return self.sampling_capacitance

    @property
    def lna_noise_density(self) -> float:
        """Input-referred noise density in V/sqrt(Hz) over the LNA bandwidth."""
        return self.lna_noise_rms / math.sqrt(self.bw_lna)

    def with_(self, **changes) -> "DesignPoint":
        """Return a copy with ``changes`` applied (dataclass replace)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary used in sweep logs."""
        kind = (
            f"CS(M={self.cs_m}/{self.cs_n_phi}, s={self.cs_sparsity})"
            if self.use_cs
            else "baseline"
        )
        return (
            f"{kind} N={self.n_bits}b noise={self.lna_noise_rms / MICRO:.1f}uV "
            f"fs={self.f_sample:.0f}Hz"
        )
