"""Power and area models: Table II equations, Table III technology constants.

Public surface:

* :class:`Technology`, :data:`GPDK045` -- process constants.
* :class:`DesignPoint` -- one point of the architectural design space with
  the derived clocking/sizing relations.
* Per-block power functions (``lna_power`` etc.), :func:`chain_power` and
  :class:`PowerReport` for whole-chain breakdowns.
* :func:`chain_area` / :class:`AreaReport` for the Fig. 9 capacitor metric.
"""

from repro.power.area import AreaReport, chain_area
from repro.power.noise_budget import NoiseBudget, noise_budget, required_noise_floor
from repro.power.models import (
    BLOCK_ORDER,
    CS_GATES_PER_CELL,
    CS_LOGIC_ACTIVITY,
    SAR_LOGIC_ACTIVITY,
    PowerReport,
    chain_power,
    comparator_power,
    cs_encoder_logic_power,
    dac_power,
    digital_cs_encoder_power,
    leakage_power,
    lna_current_bounds,
    lna_power,
    sample_hold_power,
    sar_logic_power,
    transmitter_power,
)
from repro.power.technology import GPDK045, DesignPoint, Technology

__all__ = [
    "AreaReport",
    "BLOCK_ORDER",
    "CS_GATES_PER_CELL",
    "CS_LOGIC_ACTIVITY",
    "DesignPoint",
    "GPDK045",
    "PowerReport",
    "SAR_LOGIC_ACTIVITY",
    "Technology",
    "chain_area",
    "chain_power",
    "comparator_power",
    "cs_encoder_logic_power",
    "dac_power",
    "digital_cs_encoder_power",
    "leakage_power",
    "lna_current_bounds",
    "lna_power",
    "NoiseBudget",
    "noise_budget",
    "required_noise_floor",
    "sample_hold_power",
    "sar_logic_power",
    "transmitter_power",
]
