"""Wire protocol of the fleet layer: JSON lines over a TCP stream.

One message per line, each a JSON object with a ``type`` field.  The
framing is deliberately primitive -- ``socket.makefile`` readers and
``json.loads`` on both ends, no length prefixes, no binary -- because
the payloads are small (a chunk of design points, a list of
evaluations, a telemetry delta) and the protocol must stay debuggable
with ``nc`` and readable in captured logs.  Everything on the wire is
built from the canonical serialisers in :mod:`repro.core.serialization`
(``design_point_to_dict`` / ``evaluation_to_dict`` round-trip exactly)
plus :meth:`~repro.core.telemetry.TelemetrySnapshot.to_wire`, so a
fleet sweep produces byte-identical evaluations to a single-host run.

Message flow (worker-initiated; the coordinator only ever replies)::

    worker                         coordinator
    ------                         -----------
    hello {protocol, label}    ->
                               <-  welcome {protocol, fingerprint, spec,
                                            policy, heartbeat_interval_s,
                                            telemetry: {enabled, trace,
                                                        max_trace_events}}
    sync {t0}                  ->
                               <-  sync_ack {t0, t1}
    request {}                 ->
                               <-  lease {lease, chunk_id, deadline_s,
                                          fingerprint, chunk_digest,
                                          trace?: {id, parent},
                                          points: [{index, point}]}
                                   | wait {delay_s} | done {}
    heartbeat {lease, trace?}  ->  (no reply: the worker's heartbeat
                                    thread shares the socket with its
                                    main thread, so replies here would
                                    interleave into the lease stream)
    complete {lease, chunk_digest,
              rows: [{index, evaluation, elapsed_s, stats}],
              telemetry?}      ->
                               <-  ack {lease, ok, fresh, duplicates}
    fail {lease, error}        ->
                               <-  ack {lease, ok}
    bye {}                     ->  (connection closes)

A lease is the unit of fault tolerance: the coordinator grants a chunk
with a deadline; heartbeats extend the deadline; a worker that goes
silent past it loses the lease and the chunk is requeued.  Completions
are validated against the lease's ``chunk_digest`` and deduplicated at
*point index* granularity on the coordinator, so late completions from
expired leases merge exactly-once.

Distributed tracing rides this protocol instead of adding a second
channel.  The ``sync`` exchange is an NTP-style clock probe: the worker
records its send time ``t0`` and the coordinator answers with its own
receive time ``t1``; from its read time ``t2`` the worker estimates the
coordinator-minus-worker clock offset as ``t1 - (t0 + t2) / 2`` and
stamps it into every trace snapshot it ships, so the coordinator's
:meth:`~repro.core.tracing.Tracer.absorb` files remote spans on one
aligned timeline.  Each ``lease`` carries the coordinator's trace
context (a trace id plus the parent span id of the coordinator's
``fleet.run`` span); the worker parents its ``fleet.worker.lease`` span
under it.  Drained trace deltas piggyback on ``heartbeat`` messages and
inside the ``complete`` telemetry snapshot -- a long chunk streams its
spans home while still running.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from typing import IO

from repro.core.results import Evaluation
from repro.core.serialization import (
    design_point_from_dict,
    design_point_to_dict,
    evaluation_from_dict,
    evaluation_to_dict,
)
from repro.power.technology import DesignPoint

#: Version stamp exchanged in hello/welcome; mismatches refuse the worker.
#: v2 added the ``sync``/``sync_ack`` clock probe, the ``telemetry``
#: advertisement in ``welcome``, lease trace context and trace deltas on
#: heartbeats -- an incompatible handshake, hence the bump.
PROTOCOL_VERSION = 2

#: Messages a worker may send (anything else is a protocol error).
WORKER_MESSAGES = ("hello", "sync", "request", "heartbeat", "complete", "fail", "bye")

#: Messages a coordinator may send.
COORDINATOR_MESSAGES = ("welcome", "sync_ack", "lease", "wait", "done", "ack", "error")


class ProtocolError(RuntimeError):
    """The peer sent something that is not a valid fleet message."""


def send_message(stream: IO[str], payload: dict) -> None:
    """Write one message as a compact JSON line and flush it.

    ``allow_nan=False`` keeps the wire strict JSON: evaluation metrics
    may legitimately be NaN/inf, but ``evaluation_to_dict`` already
    encodes those as strings, and anything else non-finite on the wire
    is a bug better caught at the sender.
    """
    stream.write(json.dumps(payload, separators=(",", ":"), allow_nan=False))
    stream.write("\n")
    stream.flush()


def recv_message(stream: IO[str], expect: Sequence[str] | None = None) -> dict | None:
    """Read one message line; ``None`` on a closed connection.

    ``expect`` optionally restricts the acceptable ``type`` values;
    out-of-band types raise :class:`ProtocolError` (the caller decides
    whether that kills the connection or the run).
    """
    line = stream.readline()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except ValueError as error:
        raise ProtocolError(f"undecodable message line: {line[:200]!r}") from error
    if not isinstance(payload, dict) or not isinstance(payload.get("type"), str):
        raise ProtocolError(f"message must be an object with a 'type': {line[:200]!r}")
    if expect is not None and payload["type"] not in expect:
        raise ProtocolError(
            f"unexpected message type {payload['type']!r} (expected one of {expect})"
        )
    return payload


# --- chunk and result row encoding -------------------------------------------


def chunk_digest(chunk: Sequence[tuple[int, DesignPoint]]) -> str:
    """Content digest of an index-tagged chunk.

    Hashes the (index, describe()) pairs in order, so the coordinator
    can verify a completion refers to exactly the points it leased --
    a worker answering with a stale or foreign chunk is rejected
    instead of silently merged.
    """
    body = "\n".join(f"{index}:{point.describe()}" for index, point in chunk)
    return hashlib.sha256(body.encode()).hexdigest()


def encode_chunk(chunk: Sequence[tuple[int, DesignPoint]]) -> list[dict]:
    """Wire form of an index-tagged chunk."""
    return [
        {"index": int(index), "point": design_point_to_dict(point)}
        for index, point in chunk
    ]


def decode_chunk(payload: Sequence[dict]) -> list[tuple[int, DesignPoint]]:
    """Inverse of :func:`encode_chunk`."""
    try:
        return [
            (int(entry["index"]), design_point_from_dict(entry["point"]))
            for entry in payload
        ]
    except (KeyError, TypeError) as error:
        raise ProtocolError(f"malformed chunk payload: {error}") from error


def encode_rows(
    rows: Sequence[tuple[int, Evaluation, float, dict]],
) -> list[dict]:
    """Wire form of completed result rows (index, evaluation, timing, stats)."""
    return [
        {
            "index": int(index),
            "evaluation": evaluation_to_dict(evaluation),
            "elapsed_s": float(elapsed_s),
            "stats": dict(stats),
        }
        for index, evaluation, elapsed_s, stats in rows
    ]


def decode_rows(payload: Sequence[dict]) -> list[tuple[int, Evaluation, float, dict]]:
    """Inverse of :func:`encode_rows`."""
    try:
        return [
            (
                int(entry["index"]),
                evaluation_from_dict(entry["evaluation"]),
                float(entry["elapsed_s"]),
                dict(entry.get("stats", {})),
            )
            for entry in payload
        ]
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed result rows: {error}") from error
