"""Deterministic fault injection for fleet sweeps.

The chaos harness answers the only question that matters for a
distributed layer: *does the sweep still converge to the single-host
result when the fleet misbehaves?*  A :class:`ChaosPlan` scripts one
worker's misbehaviour -- SIGKILL itself mid-chunk, go silent (drop
heartbeats) so its lease expires while it keeps computing, delay its
completion past the deadline to force the late-double-completion dedup
path, or partition its socket and reconnect.  Plans are plain frozen
dataclasses the spawned worker process receives at fork, so every fault
fires at an exact, reproducible step -- no timing races in the tests.

:func:`seeded_plans` derives a whole fleet's plans from one seed via
:func:`repro.util.rng.derive_seed` (the same SHA-256 stream-splitting
the simulators use), so a chaos CI run is as reproducible as a clean
sweep: same seed, same faults, same recovery sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.util.rng import derive_seed


@dataclass(frozen=True)
class ChaosPlan:
    """Scripted misbehaviour of one worker.

    Parameters
    ----------
    kill_after_points:
        SIGKILL the worker process after it has evaluated this many
        points (counted across chunks) -- mid-chunk, before any
        completion is sent.  The hard-crash case: no goodbye, no flush;
        the coordinator only learns via the dropped connection.
    drop_heartbeats_on_chunk:
        On the k-th chunk this worker receives (0-based), send no
        heartbeats while evaluating, so the lease expires even though
        the worker is healthy.
    complete_delay_s:
        Extra sleep before sending the completion of the heartbeat-less
        chunk.  Set longer than the lease timeout to guarantee the
        coordinator requeues first and this worker's completion arrives
        *late* -- exercising exactly-once dedup.
    partition_on_chunk:
        On the k-th chunk (0-based), drop the socket right after
        receiving the lease (evaluating nothing), wait
        ``partition_reconnect_s``, and reconnect as a fresh session.
    """

    label: str = ""
    kill_after_points: int | None = None
    drop_heartbeats_on_chunk: int | None = None
    complete_delay_s: float = 0.0
    partition_on_chunk: int | None = None
    partition_reconnect_s: float = 0.2


#: A plan that injects nothing (the default for unlisted workers).
BENIGN = ChaosPlan(label="benign")


def seeded_plans(
    seed: int,
    n_workers: int,
    *,
    kill_fraction: float = 0.0,
    silence_fraction: float = 0.0,
    partition_fraction: float = 0.0,
    kill_after_points: int = 2,
    complete_delay_s: float = 0.0,
) -> list[ChaosPlan]:
    """Derive one fault plan per worker from a seed.

    Each worker draws from its own :func:`derive_seed` stream, so adding
    a worker never changes the faults of the others.  At most one fault
    class is assigned per worker (killed workers cannot also partition),
    chosen by a single uniform draw against the cumulative fractions.
    """
    for name, fraction in (
        ("kill_fraction", kill_fraction),
        ("silence_fraction", silence_fraction),
        ("partition_fraction", partition_fraction),
    ):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {fraction}")
    if kill_fraction + silence_fraction + partition_fraction > 1.0:
        raise ValueError("chaos fractions must sum to <= 1")
    plans: list[ChaosPlan] = []
    for i in range(n_workers):
        rng = random.Random(derive_seed(seed, f"fleet.chaos:{i}"))
        draw = rng.random()
        label = f"chaos-{i}"
        if draw < kill_fraction:
            plans.append(
                ChaosPlan(label=label, kill_after_points=kill_after_points)
            )
        elif draw < kill_fraction + silence_fraction:
            plans.append(
                ChaosPlan(
                    label=label,
                    drop_heartbeats_on_chunk=rng.randrange(2),
                    complete_delay_s=complete_delay_s,
                )
            )
        elif draw < kill_fraction + silence_fraction + partition_fraction:
            plans.append(
                ChaosPlan(label=label, partition_on_chunk=rng.randrange(2))
            )
        else:
            plans.append(ChaosPlan(label=label))
    return plans
