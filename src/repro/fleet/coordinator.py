"""Fleet coordinator: lease-based chunk distribution with dead-worker recovery.

The coordinator owns the sweep's ground truth -- which point indices are
done -- and rents out everything else.  Work is sharded into chunks
(:func:`~repro.core.execution.chunk_pending`, same sizing as the process
executor) and granted to workers as **leases**: a chunk, a wall-clock
deadline, and the evaluator fingerprint.  Heartbeats extend the
deadline; a lease that goes silent past it is *expired* and its
unfinished points are requeued.  The failure ladder generalises PR 3's
crash isolation:

1. expiry / worker disconnect / reported failure -> requeue the chunk
   (bounded by ``max_requeues``);
2. a multi-point chunk over budget -> split into single-point chunks,
   each with one remaining attempt (isolating the poison point exactly
   as the BrokenProcessPool path does);
3. a single point over budget -> **quarantine**: it is finalised as a
   failed :class:`~repro.core.results.Evaluation` naming the point, and
   the sweep completes without it.

Completions deduplicate at point-index granularity: a worker whose
lease expired mid-evaluation may still deliver late, and whichever
completion lands first wins -- every point is finalised exactly once,
so a chaos run merges to the same result set as a single-host sweep.
Finalisation happens through the caller-supplied callback (the
explorer's cache/checkpoint/telemetry hook), so checkpoint resume after
a coordinator kill works unchanged: finished points are on disk,
unfinished ones re-shard on the next run.

Everything is plain threads over blocking sockets: one acceptor, one
handler thread per worker connection, and lease expiry swept from the
:meth:`FleetCoordinator.run` loop.  All shared state mutates under one
lock; the telemetry sink has its own.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Callable

from repro.core import flight
from repro.core.execution import (
    DEFAULT_POLICY,
    ExecutionPolicy,
    chunk_pending,
)
from repro.core.results import Evaluation
from repro.core.telemetry import Telemetry, TelemetrySnapshot, get_active
from repro.fleet import protocol
from repro.power.technology import DesignPoint

log = logging.getLogger("repro.fleet")

#: Default lease wall-clock budget; generous for smoke-scale points.
DEFAULT_LEASE_TIMEOUT_S = 30.0

#: Requeue budget per chunk before the poison ladder escalates.
DEFAULT_MAX_REQUEUES = 2

#: Trace-event bound advertised to workers (each ships drained deltas on
#: heartbeats/completions, so the worker-side buffer stays small).
WORKER_TRACE_MAX_EVENTS = 20_000


@dataclass
class Lease:
    """One granted chunk: who holds it, until when, and what exactly."""

    lease_id: str
    chunk_id: int
    worker: str
    deadline: float  # time.monotonic() horizon, extended by heartbeats
    chunk_digest: str
    n_points: int


@dataclass
class FleetReport:
    """Accounting of one fleet run (the manifest's ``fleet`` section)."""

    points_total: int = 0
    points_completed: int = 0
    points_quarantined: int = 0
    chunks: int = 0
    leases_granted: int = 0
    leases_expired: int = 0
    requeues: int = 0
    splits: int = 0
    duplicates_dropped: int = 0
    worker_failures: int = 0
    #: label -> {"chunks": n, "points": n, "disconnects": n}
    workers: dict = field(default_factory=dict)
    #: Quarantined poison points: {"index", "point", "reason"}.
    quarantined: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return asdict(self)


class LeaseTable:
    """The coordinator's pure lease state machine (no sockets, no threads).

    Callers hold their own lock; the table itself is not thread-safe.
    Keeping it socket-free makes the recovery ladder unit-testable at
    interactive speed -- the chaos suite exercises the same transitions
    end-to-end over real connections.
    """

    def __init__(
        self,
        chunks: list[list[tuple[int, DesignPoint]]],
        *,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        clock: Callable[[], float] = time.monotonic,
    ):
        if lease_timeout_s <= 0:
            raise ValueError(f"lease_timeout_s must be > 0, got {lease_timeout_s}")
        if max_requeues < 0:
            raise ValueError(f"max_requeues must be >= 0, got {max_requeues}")
        self.lease_timeout_s = float(lease_timeout_s)
        self.max_requeues = int(max_requeues)
        self.clock = clock
        self.chunks: dict[int, list[tuple[int, DesignPoint]]] = {
            i: list(chunk) for i, chunk in enumerate(chunks)
        }
        self.queue: deque[int] = deque(self.chunks)
        self.leases: dict[str, Lease] = {}
        #: lease_id -> (chunk_id, digest); kept after expiry so a late
        #: completion can still be validated and deduplicated.
        self.lease_history: dict[str, tuple[int, str]] = {}
        self.requeues: dict[int, int] = dict.fromkeys(self.chunks, 0)
        self.done: set[int] = set()
        self.points: dict[int, DesignPoint] = {
            index: point for chunk in chunks for index, point in chunk
        }
        self.report = FleetReport(
            points_total=len(self.points), chunks=len(self.chunks)
        )

    @property
    def all_done(self) -> bool:
        return len(self.done) >= len(self.points)

    def grant(self, worker: str) -> tuple[Lease, list[tuple[int, DesignPoint]]] | None:
        """Lease the next chunk with unfinished points to ``worker``."""
        while self.queue:
            chunk_id = self.queue.popleft()
            remaining = [
                (index, point)
                for index, point in self.chunks[chunk_id]
                if index not in self.done
            ]
            if not remaining:
                continue
            self.chunks[chunk_id] = remaining
            self.report.leases_granted += 1
            lease = Lease(
                lease_id=f"lease-{self.report.leases_granted:06d}",
                chunk_id=chunk_id,
                worker=worker,
                deadline=self.clock() + self.lease_timeout_s,
                chunk_digest=protocol.chunk_digest(remaining),
                n_points=len(remaining),
            )
            self.leases[lease.lease_id] = lease
            self.lease_history[lease.lease_id] = (chunk_id, lease.chunk_digest)
            return lease, remaining
        return None

    def heartbeat(self, lease_id: str) -> bool:
        """Extend a live lease's deadline; ``False`` if it already expired."""
        lease = self.leases.get(lease_id)
        if lease is None:
            return False
        lease.deadline = self.clock() + self.lease_timeout_s
        return True

    def complete(
        self, lease_id: str, rows: list[tuple[int, Evaluation, float, dict]]
    ) -> tuple[list[tuple[int, Evaluation, float, dict]], int]:
        """Merge a completion; returns (fresh rows, duplicate count).

        Accepts completions from expired leases (the worker was slow,
        not wrong); index-level dedup guarantees exactly-once merging
        whichever copy arrives first.  Unknown leases are rejected.
        """
        if lease_id not in self.lease_history:
            raise protocol.ProtocolError(f"completion for unknown lease {lease_id!r}")
        self.leases.pop(lease_id, None)
        fresh = [row for row in rows if row[0] not in self.done]
        duplicates = len(rows) - len(fresh)
        for row in fresh:
            self.done.add(row[0])
        self.report.points_completed += len(fresh)
        self.report.duplicates_dropped += duplicates
        return fresh, duplicates

    def release_worker(self, worker: str) -> list[dict]:
        """Requeue every lease held by a vanished worker (disconnect)."""
        events: list[dict] = []
        for lease in [x for x in self.leases.values() if x.worker == worker]:
            del self.leases[lease.lease_id]
            events.extend(self._requeue(lease, "worker disconnected"))
        return events

    def fail(self, lease_id: str, reason: str) -> list[dict]:
        """A worker reported it cannot finish the lease; requeue now."""
        lease = self.leases.pop(lease_id, None)
        if lease is None:
            return []
        self.report.worker_failures += 1
        return self._requeue(lease, f"worker failure: {reason}")

    def expire(self, now: float | None = None) -> list[dict]:
        """Requeue every lease whose deadline has passed."""
        now = self.clock() if now is None else now
        events: list[dict] = []
        for lease in [x for x in self.leases.values() if x.deadline < now]:
            del self.leases[lease.lease_id]
            self.report.leases_expired += 1
            events.extend(self._requeue(lease, "lease expired"))
        return events

    def _requeue(self, lease: Lease, reason: str) -> list[dict]:
        """The recovery ladder: requeue -> split -> quarantine.

        Returns event dicts for the telemetry trail; quarantine events
        carry the poisoned ``index`` so the coordinator can finalise a
        failed evaluation for it.
        """
        chunk_id = lease.chunk_id
        remaining = [
            (index, point)
            for index, point in self.chunks[chunk_id]
            if index not in self.done
        ]
        base = {"lease": lease.lease_id, "chunk": chunk_id, "reason": reason}
        if not remaining:
            return []  # a racing completion already finished the chunk
        self.requeues[chunk_id] += 1
        if self.requeues[chunk_id] <= self.max_requeues:
            self.chunks[chunk_id] = remaining
            self.queue.append(chunk_id)
            self.report.requeues += 1
            return [{"action": "requeue", "n_points": len(remaining), **base}]
        if len(remaining) > 1:
            # Over budget as a group: isolate.  Each single-point chunk
            # gets exactly one more attempt before quarantine, mirroring
            # the BrokenProcessPool one-point isolation of PR 3.
            events = [{"action": "split", "n_points": len(remaining), **base}]
            self.chunks[chunk_id] = []
            for index, point in remaining:
                new_id = max(self.chunks) + 1
                self.chunks[new_id] = [(index, point)]
                self.requeues[new_id] = self.max_requeues
                self.queue.append(new_id)
            self.report.splits += 1
            self.report.chunks = len(self.chunks)
            return events
        index, point = remaining[0]
        self.done.add(index)
        self.chunks[chunk_id] = []
        detail = (
            f"PoisonChunk: point {point.describe()} leased "
            f"{self.requeues[chunk_id]} times without completion "
            f"(last failure: {reason}); quarantined"
        )
        self.report.points_quarantined += 1
        self.report.quarantined.append(
            {"index": index, "point": point.describe(), "reason": detail}
        )
        return [{"action": "quarantine", "index": index, "detail": detail, **base}]


@dataclass
class FleetOptions:
    """Knobs of a fleet-executed sweep (``explore(executor="fleet")``).

    ``spawn_workers`` forks that many local worker processes against the
    coordinator's endpoint -- the processes-as-nodes mode the tests and
    CI use; 0 means external workers will connect on their own
    (``repro worker --connect``).  ``spec`` is the evaluator recipe
    advertised to external workers (see
    :func:`repro.fleet.worker.resolve_spec`); local spawned workers
    inherit the evaluator object directly over ``fork``.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 -> ephemeral; the bound port is in .endpoint
    spawn_workers: int = 3
    spec: dict | None = None
    lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S
    heartbeat_interval_s: float | None = None  # default: lease_timeout_s / 3
    max_requeues: int = DEFAULT_MAX_REQUEUES
    worker_cache_dir: str | None = None
    #: Fair-start gate: hold early grants so the first N *distinct*
    #: workers each receive one of the first N leases before any worker
    #: gets a second.  Without it, one fast worker can drain a cheap
    #: queue before its siblings finish connecting -- harmless for
    #: throughput, fatal for chaos determinism and load spreading.
    #: ``None``/0 disables; capped at the chunk count of the run.
    wait_for_workers: int | None = None
    #: Per-worker chaos plans for spawned workers (tests/CI only).
    chaos_plans: tuple = ()
    #: Chaos hook: raise KeyboardInterrupt after N finalised points, to
    #: exercise coordinator-kill + checkpoint-resume in-process.
    interrupt_after_points: int | None = None


class FleetCoordinator:
    """TCP server renting sweep chunks to workers under leases.

    Lifecycle::

        with FleetCoordinator(fingerprint, policy=policy, telemetry=tel) as co:
            procs = spawn_local_workers(3, co.endpoint, evaluator=ev)
            report = co.run(pending, finalize, n_workers=3)

    ``run`` blocks until every point index is finalised (completed or
    quarantined).  ``finalize(index, evaluation, elapsed_s, stats)`` is
    invoked under the coordinator lock in completion order -- the
    explorer's hook appends to the checkpoint, fills the cache and
    updates progress, exactly as the process-pool path does.
    """

    def __init__(
        self,
        fingerprint: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        spec: dict | None = None,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        heartbeat_interval_s: float | None = None,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        wait_for_workers: int | None = None,
        policy: ExecutionPolicy = DEFAULT_POLICY,
        telemetry: Telemetry | None = None,
    ):
        self.fingerprint = fingerprint
        self.spec = spec
        self.wait_for_workers = int(wait_for_workers or 0)
        self.lease_timeout_s = float(lease_timeout_s)
        self.heartbeat_interval_s = (
            float(heartbeat_interval_s)
            if heartbeat_interval_s is not None
            else self.lease_timeout_s / 3.0
        )
        self.max_requeues = int(max_requeues)
        self.policy = policy
        self.telemetry = telemetry if telemetry is not None else get_active()
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._table: LeaseTable | None = None
        self._finalize: Callable | None = None
        self._interrupt_after: int | None = None
        self._interrupted = False
        self._closing = False
        self._fair_start_granted: set[str] = set()
        self._fair_start_left = 0
        #: Trace context stamped into every lease: one id per sweep, the
        #: parent span id of the live ``fleet.run`` span (None when the
        #: attached telemetry has no tracer).
        self._trace_id = f"fleet-{fingerprint[:12]}"
        self._trace_parent: str | None = None
        self._session_counter = 0
        self._sessions: set[socket.socket] = set()
        self._server = socket.create_server((host, port))
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="fleet-accept", daemon=True
        )
        self._acceptor.start()

    @property
    def endpoint(self) -> tuple[str, int]:
        """The bound (host, port) workers should connect to."""
        return self._server.getsockname()[:2]

    def __enter__(self) -> "FleetCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop accepting, drop every worker connection."""
        self._closing = True
        try:
            self._server.close()
        except OSError:  # pragma: no cover - already closed
            pass
        with self._lock:
            sessions = list(self._sessions)
        for sock in sessions:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass

    # --- the run loop ---------------------------------------------------------

    def run(
        self,
        pending: list[tuple[int, DesignPoint]],
        finalize: Callable[[int, Evaluation, float, dict], None],
        *,
        n_workers: int = 1,
        chunk_size: int | None = None,
        interrupt_after_points: int | None = None,
    ) -> FleetReport:
        """Distribute ``pending`` and block until every index is finalised."""
        chunks = chunk_pending(pending, max(1, n_workers), chunk_size)
        tel = self.telemetry
        with self._lock:
            self._table = LeaseTable(
                chunks,
                lease_timeout_s=self.lease_timeout_s,
                max_requeues=self.max_requeues,
            )
            self._finalize = finalize
            self._interrupt_after = interrupt_after_points
            self._interrupted = False
            # The fair-start gate cannot wait for more workers than
            # there are chunks to hand out (a resumed run may have a
            # tiny remainder), or held workers would stall the sweep.
            self._fair_start_granted = set()
            self._fair_start_left = min(self.wait_for_workers, len(chunks))
            table = self._table
        tel.count("fleet.chunks", len(chunks))
        tel.event(
            "fleet.start",
            points=len(pending),
            chunks=len(chunks),
            lease_timeout_s=self.lease_timeout_s,
        )
        # Sweep expiries from here rather than a dedicated reaper thread:
        # the wait is idle time anyway, and it keeps every lease decision
        # on one thread family (this one + connection handlers).
        poll_s = max(0.01, min(0.25, self.lease_timeout_s / 4.0))
        with tel.span("fleet.run"):
            if tel.tracer is not None:
                # Captured on this thread, inside the span: leases carry
                # it so worker lease spans parent under fleet.run.
                self._trace_parent = tel.tracer.current_span_id()
            try:
                while True:
                    with self._lock:
                        if self._interrupted:
                            raise KeyboardInterrupt("fleet chaos interrupt")
                        if table.all_done:
                            break
                        events = table.expire()
                    self._emit_lease_events(events)
                    self._wake.wait(poll_s)
                    self._wake.clear()
            finally:
                self._trace_parent = None
        report = table.report
        tel.count("fleet.points.completed", report.points_completed)
        tel.event("fleet.report", **report.to_dict())
        return report

    def _emit_lease_events(self, events: list[dict]) -> None:
        tel = self.telemetry
        for event in events:
            action = event["action"]
            tel.count(f"fleet.leases.{action}")
            tel.event("fleet.lease", **event)
            if not tel.enabled:
                # Telemetry events normally reach the flight ring through
                # the Telemetry.event tap; keep the postmortem trail alive
                # for unprofiled runs too.
                flight.record("fleet.lease", **event)
            if action in ("requeue", "split"):
                # A lost/silent worker is a postmortem-worthy incident
                # even though the sweep recovers: dump the recent trail.
                flight.dump(
                    "fleet-worker-lost",
                    detail=str(event.get("reason", "")),
                    lease=event.get("lease"),
                    chunk=event.get("chunk"),
                    action=action,
                )
            if action == "quarantine":
                flight.dump(
                    "fleet-quarantine",
                    detail=str(event.get("detail", "")),
                    lease=event.get("lease"),
                    index=event.get("index"),
                )
                index = event["index"]
                with self._lock:
                    table = self._table
                    point = table.points[index] if table else None
                    finalize = self._finalize
                    if point is not None and finalize is not None:
                        finalize(
                            index,
                            Evaluation(
                                point=point, metrics={}, error=event["detail"]
                            ),
                            0.0,
                            {"retries": 0, "timeouts": 0},
                        )
                log.warning("fleet quarantined point %d: %s", index, event["detail"])
                self._wake.set()

    # --- connection handling --------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._server.accept()
            except OSError:  # listener closed
                return
            with self._lock:
                self._sessions.add(sock)
            threading.Thread(
                target=self._serve_connection,
                args=(sock,),
                name="fleet-session",
                daemon=True,
            ).start()

    def _serve_connection(self, sock: socket.socket) -> None:
        tel = self.telemetry
        worker = "<unknown>"
        session: str | None = None
        reader = sock.makefile("r", encoding="utf-8", newline="\n")
        writer = sock.makefile("w", encoding="utf-8", newline="\n")
        try:
            hello = protocol.recv_message(reader, expect=("hello",))
            if hello is None:
                return
            if hello.get("protocol") != protocol.PROTOCOL_VERSION:
                protocol.send_message(
                    writer,
                    {
                        "type": "error",
                        "error": (
                            f"protocol {hello.get('protocol')!r} != "
                            f"{protocol.PROTOCOL_VERSION}"
                        ),
                    },
                )
                return
            worker = str(hello.get("label") or "worker")
            # Leases are owned by the *session*, not the label: a worker
            # that reconnects after a partition must not have its fresh
            # lease requeued when the stale connection's handler finally
            # notices the old socket died.
            with self._lock:
                self._session_counter += 1
                session = f"{worker}#{self._session_counter}"
            tel.count("fleet.workers.connected")
            tel.event("fleet.worker", action="connect", worker=worker)
            protocol.send_message(
                writer,
                {
                    "type": "welcome",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "fingerprint": self.fingerprint,
                    "spec": self.spec,
                    "policy": asdict(self.policy),
                    "heartbeat_interval_s": self.heartbeat_interval_s,
                    # Tell the worker what to ship home: telemetry deltas
                    # and, when the driver is tracing, its own bounded
                    # Tracer whose spans merge into per-worker lanes.
                    "telemetry": {
                        "enabled": bool(tel.enabled),
                        "trace": tel.tracer is not None,
                        "max_trace_events": WORKER_TRACE_MAX_EVENTS,
                    },
                },
            )
            while True:
                message = protocol.recv_message(
                    reader,
                    expect=(
                        "sync",
                        "request",
                        "heartbeat",
                        "complete",
                        "fail",
                        "bye",
                    ),
                )
                if message is None or message["type"] == "bye":
                    return
                reply = self._dispatch(worker, session, message)
                if reply is not None:
                    protocol.send_message(writer, reply)
        except (protocol.ProtocolError, OSError, ValueError) as error:
            # ValueError covers a writer used after close(); protocol
            # errors and socket resets both mean this worker is gone.
            if not self._closing:
                log.warning("fleet connection to %s dropped: %s", worker, error)
        finally:
            with self._lock:
                self._sessions.discard(sock)
                table = self._table
                events = (
                    table.release_worker(session) if table and session else []
                )
                if table and worker in table.report.workers:
                    table.report.workers[worker]["disconnects"] += 1
            self._emit_lease_events(events)
            tel.event("fleet.worker", action="disconnect", worker=worker)
            self._wake.set()
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _dispatch(self, worker: str, session: str, message: dict) -> dict | None:
        kind = message["type"]
        if kind == "sync":
            # Clock probe: echo the worker's t0 with our receive time, so
            # it can estimate the coordinator-minus-worker offset.
            return {"type": "sync_ack", "t0": message.get("t0"), "t1": time.time()}
        if kind == "request":
            return self._handle_request(worker, session)
        if kind == "heartbeat":
            return self._handle_heartbeat(worker, message)
        if kind == "complete":
            return self._handle_complete(worker, message)
        return self._handle_fail(worker, message)

    def _handle_request(self, worker: str, session: str) -> dict:
        tel = self.telemetry
        with self._lock:
            table = self._table
            if table is None:
                # The sweep has not started (worker connected early).
                return {"type": "wait", "delay_s": 0.05}
            if table.all_done:
                return {"type": "done"}
            if self._fair_start_left > 0 and worker in self._fair_start_granted:
                # Hold repeat customers until every expected worker has
                # taken its first lease (see FleetOptions.wait_for_workers).
                return {"type": "wait", "delay_s": 0.05}
            granted = table.grant(session)
            if granted is not None and self._fair_start_left > 0:
                if worker not in self._fair_start_granted:
                    self._fair_start_granted.add(worker)
                    self._fair_start_left -= 1
        if granted is None:
            # Everything is leased out; poll back shortly in case one
            # expires or splits.
            return {"type": "wait", "delay_s": min(0.1, self.lease_timeout_s / 10)}
        lease, chunk = granted
        tel.count("fleet.leases.granted")
        tel.event(
            "fleet.lease",
            action="grant",
            lease=lease.lease_id,
            chunk=lease.chunk_id,
            worker=worker,
            n_points=lease.n_points,
        )
        reply = {
            "type": "lease",
            "lease": lease.lease_id,
            "chunk_id": lease.chunk_id,
            "deadline_s": self.lease_timeout_s,
            "fingerprint": self.fingerprint,
            "chunk_digest": lease.chunk_digest,
            "points": protocol.encode_chunk(chunk),
        }
        if tel.tracer is not None:
            reply["trace"] = {"id": self._trace_id, "parent": self._trace_parent}
        return reply

    def _handle_heartbeat(self, worker: str, message: dict) -> None:
        # Heartbeats are deliberately fire-and-forget: the worker's main
        # thread and its heartbeat thread share one socket, and replying
        # here would interleave acks into the lease/complete reply
        # stream the main thread is reading.  A worker whose lease
        # silently expired finds out from its completion ack instead.
        lease_id = str(message.get("lease"))
        with self._lock:
            ok = self._table.heartbeat(lease_id) if self._table else False
        self.telemetry.count("fleet.heartbeats")
        trace_delta = message.get("trace")
        if trace_delta and self.telemetry.tracer is not None:
            try:
                self.telemetry.tracer.absorb(trace_delta)
            except ValueError as error:
                log.warning("dropping bad heartbeat trace from %s: %s", worker, error)
        if not ok:
            self.telemetry.event(
                "fleet.lease", action="stale-heartbeat", lease=lease_id, worker=worker
            )
        return None

    def _handle_complete(self, worker: str, message: dict) -> dict:
        tel = self.telemetry
        lease_id = str(message.get("lease"))
        rows = protocol.decode_rows(message.get("rows", []))
        with self._lock:
            table = self._table
            if table is None:
                raise protocol.ProtocolError("completion before any sweep started")
            history = table.lease_history.get(lease_id)
            if history is None:
                raise protocol.ProtocolError(
                    f"completion for unknown lease {lease_id!r}"
                )
            if message.get("chunk_digest") != history[1]:
                raise protocol.ProtocolError(
                    f"completion digest mismatch on lease {lease_id!r}"
                )
            fresh, duplicates = table.complete(lease_id, rows)
            finalize = self._finalize
            for index, evaluation, elapsed_s, stats in fresh:
                if finalize is not None:
                    finalize(index, evaluation, elapsed_s, stats)
            digest = table.report.workers.setdefault(
                worker, {"chunks": 0, "points": 0, "disconnects": 0}
            )
            digest["chunks"] += 1
            digest["points"] += len(fresh)
            interrupt_after = self._interrupt_after
            if (
                interrupt_after is not None
                and table.report.points_completed >= interrupt_after
            ):
                self._interrupted = True
        tel.count("fleet.points.fresh", len(fresh))
        if duplicates:
            tel.count("fleet.duplicates.dropped", duplicates)
            tel.event(
                "fleet.lease",
                action="duplicate",
                lease=lease_id,
                worker=worker,
                duplicates=duplicates,
            )
        tel.event(
            "fleet.lease",
            action="complete",
            lease=lease_id,
            worker=worker,
            fresh=len(fresh),
            duplicates=duplicates,
        )
        snapshot = message.get("telemetry")
        if snapshot:
            tel.merge(TelemetrySnapshot.from_wire(snapshot), worker=worker)
        self._wake.set()
        return {
            "type": "ack",
            "lease": lease_id,
            "ok": True,
            "fresh": len(fresh),
            "duplicates": duplicates,
        }

    def _handle_fail(self, worker: str, message: dict) -> dict:
        lease_id = str(message.get("lease"))
        reason = str(message.get("error", "unspecified"))
        with self._lock:
            events = self._table.fail(lease_id, reason) if self._table else []
        self.telemetry.count("fleet.worker_failures")
        self._emit_lease_events(events)
        self._wake.set()
        return {"type": "ack", "lease": lease_id, "ok": True}
