"""Fleet worker: lease, evaluate with the local cache, heartbeat, report.

A worker is a loop around four messages: ``request`` a lease, evaluate
its points under the coordinator's :class:`ExecutionPolicy` (heartbeat
thread keeping the lease alive), ``complete`` with the result rows plus
a drained :class:`~repro.core.telemetry.TelemetrySnapshot` delta, and
repeat until the coordinator answers ``done``.  Evaluations go through
:func:`~repro.core.execution.evaluate_one_timed` -- the same per-point
isolation, timeout and retry machinery as every other executor -- and
an optional local :class:`~repro.core.execution.EvaluationCache` keyed
by the coordinator's fingerprint, so a re-run fleet skips points any
worker has already evaluated.

Workers obtain their evaluator one of two ways: locally spawned
processes (:func:`spawn_local_workers`) inherit the evaluator object
over ``fork``; external workers (``repro worker --connect``) resolve
the coordinator's advertised ``spec`` via :func:`resolve_spec` and then
*verify* their evaluator's fingerprint against the coordinator's --
a worker computing against the wrong corpus or seed refuses to serve
rather than poisoning the sweep.

Chaos plans (:mod:`repro.fleet.chaos`) hook the exact points where real
fleets fail: after N evaluated points (SIGKILL), around heartbeats
(silence), before completion (late delivery), after a lease arrives
(partition + reconnect).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import socket
import threading
import time
from importlib import import_module
from typing import Callable

from repro.core import flight
from repro.core.execution import (
    EvaluationCache,
    ExecutionPolicy,
    evaluate_one_timed,
    evaluator_fingerprint,
)
from repro.core.resources import ResourceSampler
from repro.core.telemetry import Telemetry, activate
from repro.core.tracing import DEFAULT_MAX_TRACE_EVENTS, Tracer
from repro.fleet import protocol
from repro.fleet.chaos import ChaosPlan

log = logging.getLogger("repro.fleet.worker")


def resolve_spec(spec: dict) -> Callable:
    """Build an evaluator from a coordinator-advertised recipe.

    Two kinds::

        {"kind": "scale", "scale": "smoke"}          # a runner preset
        {"kind": "callable", "target": "pkg.mod:fn", "args": {...}}

    ``scale`` rebuilds the paper harness for that preset (each worker
    regenerates the corpus deterministically from the preset's seed);
    ``callable`` imports ``pkg.mod`` and calls ``fn(**args)``, which
    must return the evaluator.  Only use specs from coordinators you
    trust -- a spec names code to run, exactly like a checkpoint path
    or a plugin module on the CLI.
    """
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ValueError(f"evaluator spec must be a dict with 'kind', got {spec!r}")
    kind = spec["kind"]
    if kind == "scale":
        from repro.experiments.runner import make_harness

        return make_harness(str(spec["scale"])).evaluator
    if kind == "callable":
        target = str(spec.get("target", ""))
        module_name, _, attr = target.partition(":")
        if not module_name or not attr:
            raise ValueError(f"callable spec target must be 'module:attr', got {target!r}")
        factory = getattr(import_module(module_name), attr)
        return factory(**spec.get("args", {}))
    raise ValueError(f"unknown evaluator spec kind {kind!r}")


class FleetWorker:
    """One worker process's connection to a coordinator.

    ``run()`` blocks until the coordinator reports the sweep done (or
    the connection is lost with reconnection exhausted) and returns an
    accounting dict: chunks completed, points evaluated, cache hits,
    evaluator calls.  The evaluator-call count is the currency of the
    exactly-once acceptance test -- summed across workers it must equal
    the number of distinct points evaluated, chaos or no chaos.
    """

    def __init__(
        self,
        endpoint: tuple[str, int],
        evaluator: Callable | None = None,
        *,
        label: str | None = None,
        cache_dir: str | None = None,
        chaos: ChaosPlan | None = None,
        connect_timeout_s: float = 10.0,
    ):
        self.endpoint = (str(endpoint[0]), int(endpoint[1]))
        self.evaluator = evaluator
        self.label = label or f"{socket.gethostname()}:{os.getpid()}"
        self.cache = EvaluationCache(cache_dir) if cache_dir else None
        self.chaos = chaos or ChaosPlan()
        self.connect_timeout_s = float(connect_timeout_s)
        self.stats = {
            "chunks": 0,
            "points": 0,
            "cache_hits": 0,
            "evaluator_calls": 0,
            "reconnects": 0,
        }
        self._points_seen = 0
        self._chunks_seen = 0
        self._sock: socket.socket | None = None
        self._reader = None
        self._writer = None
        self._write_lock = threading.Lock()
        #: Estimated coordinator-minus-local clock offset (sync exchange).
        self.clock_offset_s = 0.0
        self.sync_rtt_s = 0.0
        #: Persistent per-worker sink; rebuilt by run() once the welcome
        #: says whether the coordinator wants telemetry/tracing shipped.
        self.telemetry = Telemetry()

    # --- connection plumbing --------------------------------------------------

    def _connect(self) -> dict:
        """Dial the coordinator (with retry) and complete the handshake.

        Retry-with-deadline matters in both real and test topologies:
        workers routinely start before the coordinator binds its port.
        """
        deadline = time.monotonic() + self.connect_timeout_s
        while True:
            try:
                self._sock = socket.create_connection(self.endpoint, timeout=None)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        self._reader = self._sock.makefile("r", encoding="utf-8", newline="\n")
        self._writer = self._sock.makefile("w", encoding="utf-8", newline="\n")
        self._send(
            {
                "type": "hello",
                "protocol": protocol.PROTOCOL_VERSION,
                "label": self.label,
            }
        )
        welcome = protocol.recv_message(self._reader, expect=("welcome", "error"))
        if welcome is None:
            raise protocol.ProtocolError("coordinator closed during handshake")
        if welcome["type"] == "error":
            raise protocol.ProtocolError(f"coordinator refused: {welcome.get('error')}")
        if welcome.get("protocol") != protocol.PROTOCOL_VERSION:
            raise protocol.ProtocolError(
                f"coordinator speaks protocol {welcome.get('protocol')!r}, "
                f"this worker speaks {protocol.PROTOCOL_VERSION}"
            )
        self._sync_clock()
        return welcome

    def _sync_clock(self) -> None:
        """NTP-style probe: estimate the coordinator-minus-local offset.

        ``t0`` (local send) and ``t2`` (local receive) bracket the
        coordinator's ``t1``; assuming symmetric network delay the
        coordinator clock at the midpoint reads ``t1``, so the offset is
        ``t1 - (t0 + t2) / 2``.  The estimate is stamped on every trace
        snapshot this worker ships (re-measured after each reconnect),
        which is what lets the coordinator merge lanes from machines
        whose wall clocks disagree.
        """
        t0 = time.time()
        self._send({"type": "sync", "t0": t0})
        ack = protocol.recv_message(self._reader, expect=("sync_ack", "error"))
        t2 = time.time()
        if ack is None or ack["type"] == "error":
            raise protocol.ProtocolError("coordinator failed the clock sync")
        t1 = float(ack.get("t1", t0))
        self.clock_offset_s = t1 - (t0 + t2) / 2.0
        self.sync_rtt_s = max(0.0, t2 - t0)
        tracer = self.telemetry.tracer if self.telemetry is not None else None
        if tracer is not None:
            tracer.clock_offset_s = self.clock_offset_s

    def _send(self, payload: dict) -> None:
        with self._write_lock:
            protocol.send_message(self._writer, payload)

    def _disconnect(self) -> None:
        for closer in (self._reader, self._writer, self._sock):
            try:
                if closer is not None:
                    closer.close()
            except OSError:
                pass
        self._sock = self._reader = self._writer = None

    # --- the work loop --------------------------------------------------------

    def run(self) -> dict:
        """Serve leases until the coordinator says done; returns stats."""
        welcome = self._connect()
        policy = ExecutionPolicy(**welcome["policy"])
        heartbeat_s = float(welcome.get("heartbeat_interval_s") or 1.0)
        fingerprint = str(welcome["fingerprint"])
        evaluator = self.evaluator
        if evaluator is None:
            spec = welcome.get("spec")
            if spec is None:
                raise protocol.ProtocolError(
                    "coordinator advertised no evaluator spec and this worker "
                    "was started without a local evaluator"
                )
            evaluator = resolve_spec(spec)
        local_fingerprint = evaluator_fingerprint(evaluator)
        if local_fingerprint != fingerprint:
            self._send({"type": "bye"})
            raise protocol.ProtocolError(
                f"evaluator fingerprint mismatch: coordinator={fingerprint[:16]}... "
                f"local={local_fingerprint[:16]}... (different corpus/seed/config?)"
            )
        telemetry_config = welcome.get("telemetry") or {}
        tracer = None
        if telemetry_config.get("trace"):
            tracer = Tracer(
                label=self.label,
                max_events=int(
                    telemetry_config.get("max_trace_events")
                    or DEFAULT_MAX_TRACE_EVENTS
                ),
            )
            tracer.clock_offset_s = self.clock_offset_s
        self.telemetry = Telemetry(tracer=tracer)
        sampler = None
        if telemetry_config.get("enabled"):
            sampler = ResourceSampler(
                self.telemetry, label=self.label
            ).start()
        try:
            while True:
                try:
                    self._send({"type": "request"})
                except OSError:
                    # The socket died between chunks (coordinator shut
                    # down after our last completion, most likely).
                    log.warning("%s: coordinator went away; exiting", self.label)
                    return self.stats
                message = protocol.recv_message(
                    self._reader, expect=("lease", "wait", "done")
                )
                if message is None:
                    # EOF instead of a reply: the coordinator went away.
                    # Most often the sweep just finished and its shutdown
                    # raced our request (the explorer closes connections
                    # right after the last point is finalised); a crashed
                    # coordinator looks the same, and either way there is
                    # nothing left for this worker to serve.
                    log.warning("%s: coordinator went away; exiting", self.label)
                    return self.stats
                if message["type"] == "done":
                    self._send({"type": "bye"})
                    return self.stats
                if message["type"] == "wait":
                    time.sleep(float(message.get("delay_s", 0.05)))
                    continue
                if self.chaos.partition_on_chunk == self._chunks_seen:
                    self._chunks_seen += 1
                    self._partition_and_reconnect()
                    continue
                self._serve_lease(message, evaluator, fingerprint, policy, heartbeat_s)
        finally:
            if sampler is not None:
                sampler.stop()
            self._disconnect()

    def _partition_and_reconnect(self) -> None:
        """Chaos: drop the socket with a lease in hand, then come back."""
        log.warning("%s: chaos partition (reconnecting)", self.label)
        self._disconnect()
        time.sleep(self.chaos.partition_reconnect_s)
        self.stats["reconnects"] += 1
        self._connect()

    def _serve_lease(
        self,
        lease: dict,
        evaluator: Callable,
        fingerprint: str,
        policy: ExecutionPolicy,
        heartbeat_s: float,
    ) -> None:
        lease_id = str(lease["lease"])
        chunk = protocol.decode_chunk(lease["points"])
        chunk_ordinal = self._chunks_seen
        self._chunks_seen += 1
        silenced = self.chaos.drop_heartbeats_on_chunk == chunk_ordinal
        stop_beating = threading.Event()
        beater: threading.Thread | None = None
        if not silenced:
            beater = threading.Thread(
                target=self._heartbeat_loop,
                args=(lease_id, heartbeat_s, stop_beating),
                name="fleet-heartbeat",
                daemon=True,
            )
            beater.start()
        tel = self.telemetry
        flight.record(
            "fleet.worker.lease",
            label=self.label,
            lease=lease_id,
            chunk=lease.get("chunk_id"),
            points=len(chunk),
        )
        # Parent this worker's lease span under the coordinator's
        # ``fleet.run`` span (the lease carries the trace context), so the
        # merged trace links every worker lane back to the driver.
        trace_context = lease.get("trace") or {}
        lease_token = None
        if tel.tracer is not None:
            lease_token = tel.tracer.start(
                "fleet.worker.lease",
                lease=lease_id,
                chunk=lease.get("chunk_id"),
                trace_id=trace_context.get("id"),
            )
            if lease_token.parent_id is None and trace_context.get("parent"):
                lease_token.parent_id = str(trace_context["parent"])
        rows: list[tuple] = []
        try:
            with activate(tel):
                for index, point in chunk:
                    cached = (
                        self.cache.get(fingerprint, point) if self.cache else None
                    )
                    if cached is not None:
                        self.stats["cache_hits"] += 1
                        tel.count("fleet.worker.cache_hits")
                        rows.append((index, cached, 0.0, {"retries": 0, "timeouts": 0}))
                    else:
                        self.stats["evaluator_calls"] += 1
                        tel.count("fleet.worker.evaluator_calls")
                        with tel.span("fleet.worker.point"):
                            evaluation, elapsed_s, stats = evaluate_one_timed(
                                evaluator, point, strict=False, policy=policy
                            )
                        if self.cache is not None:
                            self.cache.put(fingerprint, point, evaluation)
                        rows.append((index, evaluation, elapsed_s, stats))
                    self.stats["points"] += 1
                    self._points_seen += 1
                    if self.chaos.kill_after_points == self._points_seen:
                        # A real crash: no goodbye, no completion, no
                        # flush.  SIGKILL cannot be caught or delayed.
                        log.warning("%s: chaos SIGKILL", self.label)
                        os.kill(os.getpid(), signal.SIGKILL)
        except Exception as error:  # noqa: BLE001 - report, then drop the lease
            stop_beating.set()
            flight.record(
                "fleet.worker.fail",
                label=self.label,
                lease=lease_id,
                error=repr(error),
            )
            self._send({"type": "fail", "lease": lease_id, "error": repr(error)})
            protocol.recv_message(self._reader, expect=("ack",))
            return
        finally:
            stop_beating.set()
            if lease_token is not None and tel.tracer is not None:
                tel.tracer.finish(lease_token)
            if beater is not None:
                beater.join(timeout=heartbeat_s + 1.0)
        if silenced and self.chaos.complete_delay_s > 0:
            time.sleep(self.chaos.complete_delay_s)
        self._send(
            {
                "type": "complete",
                "lease": lease_id,
                "chunk_digest": lease["chunk_digest"],
                "rows": protocol.encode_rows(rows),
                "telemetry": tel.drain_snapshot(self.label).to_wire(),
            }
        )
        ack = protocol.recv_message(self._reader, expect=("ack",))
        if ack is None:
            # Lost ack: the rows were written out before the connection
            # died, and if this chunk closed out the sweep the
            # coordinator acks-then-shuts-down faster than we read.
            # Either the coordinator merged them (fine) or it died and
            # the lease will be requeued to someone else (also fine) --
            # never an error on the worker.
            log.warning(
                "%s: coordinator went away before acking %s", self.label, lease_id
            )
        self.stats["chunks"] += 1
        flight.record(
            "fleet.worker.complete",
            label=self.label,
            lease=lease_id,
            points=len(rows),
        )

    def _heartbeat_loop(
        self, lease_id: str, interval_s: float, stop: threading.Event
    ) -> None:
        while not stop.wait(interval_s):
            payload = {"type": "heartbeat", "lease": lease_id}
            # Piggyback drained trace deltas so a long chunk streams its
            # spans home while still running (the coordinator absorbs
            # them without replying -- heartbeats are one-way).
            tracer = self.telemetry.tracer if self.telemetry is not None else None
            if tracer is not None and tracer.n_events:
                payload["trace"] = tracer.snapshot(drain=True)
            try:
                self._send(payload)
            except (OSError, ValueError, AttributeError):
                return  # connection is gone; the main loop will notice


# --- local process spawning ---------------------------------------------------


def _worker_process_main(
    endpoint: tuple[str, int],
    evaluator: Callable | None,
    label: str,
    cache_dir: str | None,
    chaos: ChaosPlan | None,
    connect_timeout_s: float,
) -> None:
    """Entry point of a spawned local worker process."""
    logging.basicConfig(level=logging.WARNING)
    try:
        FleetWorker(
            endpoint,
            evaluator,
            label=label,
            cache_dir=cache_dir,
            chaos=chaos,
            connect_timeout_s=connect_timeout_s,
        ).run()
    except (protocol.ProtocolError, OSError) as error:
        # Expected when the coordinator finishes or dies first; a worker
        # is disposable by design.
        log.warning("%s exiting: %s", label, error)


def spawn_local_workers(
    n_workers: int,
    endpoint: tuple[str, int],
    evaluator: Callable | None = None,
    *,
    cache_dir: str | None = None,
    plans: tuple[ChaosPlan | None, ...] = (),
    connect_timeout_s: float = 10.0,
) -> list[multiprocessing.Process]:
    """Fork ``n_workers`` local worker processes against ``endpoint``.

    The fork start method hands each child the evaluator object without
    pickling (the corpus array crosses once, as shared pages); on
    platforms without fork the default context is used and the
    evaluator must be picklable -- the same contract as the process
    executor.  ``plans[i]`` (when provided) scripts worker *i*'s chaos.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platform
        ctx = multiprocessing.get_context()
    processes = []
    for i in range(n_workers):
        plan = plans[i] if i < len(plans) else None
        process = ctx.Process(
            target=_worker_process_main,
            args=(
                endpoint,
                evaluator,
                f"worker-{i}",
                cache_dir,
                plan,
                connect_timeout_s,
            ),
            name=f"repro-fleet-worker-{i}",
            daemon=True,
        )
        process.start()
        processes.append(process)
    return processes
