"""Distributed fleet sweeps: lease-based coordinator/worker execution.

This package is ROADMAP item 4 -- the layer that takes a design-space
sweep beyond one machine without giving up any of the single-host
guarantees.  A :class:`FleetCoordinator` shards the sweep into chunks
and rents them to workers as deadline-bounded **leases** over a
JSON-lines TCP protocol (:mod:`repro.fleet.protocol`); workers
(:class:`FleetWorker`, ``repro worker --connect HOST:PORT``) evaluate
with their local :class:`~repro.core.execution.EvaluationCache`,
heartbeat while working, and ship results plus telemetry deltas home.
Dead workers are recovered by lease expiry and a bounded
requeue -> split -> quarantine ladder (:class:`LeaseTable`); late
completions deduplicate at point-index granularity, so the merged
result is exactly-once and digest-identical to a serial run.  The
deterministic chaos harness (:mod:`repro.fleet.chaos`) proves it by
SIGKILLing workers mid-chunk, silencing heartbeats and partitioning
sockets on seeded schedules.

Entry points:

* ``DesignSpaceExplorer.explore(executor="fleet", fleet=FleetOptions(...))``
* ``repro sweep --fleet`` / ``repro worker --connect HOST:PORT`` (CLI)
* :class:`FleetCoordinator` + :func:`spawn_local_workers` directly.
"""

from repro.fleet.chaos import BENIGN, ChaosPlan, seeded_plans
from repro.fleet.coordinator import (
    DEFAULT_LEASE_TIMEOUT_S,
    DEFAULT_MAX_REQUEUES,
    FleetCoordinator,
    FleetOptions,
    FleetReport,
    Lease,
    LeaseTable,
)
from repro.fleet.protocol import PROTOCOL_VERSION, ProtocolError
from repro.fleet.worker import FleetWorker, resolve_spec, spawn_local_workers

__all__ = [
    "BENIGN",
    "DEFAULT_LEASE_TIMEOUT_S",
    "DEFAULT_MAX_REQUEUES",
    "PROTOCOL_VERSION",
    "ChaosPlan",
    "FleetCoordinator",
    "FleetOptions",
    "FleetReport",
    "FleetWorker",
    "Lease",
    "LeaseTable",
    "ProtocolError",
    "resolve_spec",
    "seeded_plans",
    "spawn_local_workers",
]
