"""Golden regression numbers for the paper's headline artefacts.

A *golden* is a canonical JSON snapshot of one table/figure result,
stored under ``tests/goldens/`` and regenerated with::

    python -m repro.testing.refresh_goldens

``tests/test_goldens.py`` recomputes each golden fresh and fails when a
code change drifts the numbers beyond the tolerance stated *inside the
golden file* -- the file, not the test, owns its own pass/fail contract,
so loosening a tolerance shows up in review as a data change.

Three goldens are maintained:

``table1``
    The rendered capability-comparison table plus the programmatic
    capability-evidence checks.  Purely structural -- exact match.
``table2``
    Per-block Table II power numbers (watts) at the two reference
    operating points.  Analytic closed forms -- tight 1e-9 rtol.
``fig7a``
    A miniature smoke-scale Fig. 7a sweep (the same 6-point grid the
    fast test suite uses): per-point metrics, the accuracy-constrained
    optima and the headline power-saving ratio.  Simulation outputs --
    1e-6 rtol absorbs platform libm drift.  The golden is computed with
    the serial executor; the regression test replays it on *both* the
    scalar and batched executors, which also locks the two engines to
    each other at the metric level.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Callable

from repro.core.explorer import DesignSpaceExplorer
from repro.core.parameters import ParameterSpace
from repro.experiments.fig7 import analyze_fig7
from repro.experiments.runner import make_harness
from repro.experiments.table1 import render_table1, verify_capability_evidence
from repro.experiments.table2 import power_model_rows, reference_operating_points

#: Names of the maintained goldens, in refresh order (cheap first).
GOLDEN_NAMES = ("table1", "table2", "fig7a")

#: Schema version of the golden file format.
SCHEMA_VERSION = 1

#: Accuracy floor for the miniature Fig. 7a sweep.  The smoke-scale
#: detector is far from the paper's 98% goal, so the golden uses the same
#: relaxed constraint as the fast-suite tests exercising the analysis.
FIG7A_MIN_ACCURACY = 0.5


def default_goldens_dir() -> Path:
    """``tests/goldens`` of this repository checkout."""
    return Path(__file__).resolve().parents[3] / "tests" / "goldens"


def fig7a_space():
    """The miniature Fig. 7a grid: 4 baseline + 2 CS smoke-scale points."""
    return ParameterSpace(
        {"use_cs": [False], "lna_noise_rms": [2e-6, 20e-6], "n_bits": [6, 8]}
    ) | ParameterSpace(
        {"use_cs": [True], "lna_noise_rms": [8e-6], "n_bits": [8], "cs_m": [75, 150]}
    )


def _optimum_payload(evaluation) -> dict[str, Any]:
    return {
        "point": evaluation.point.describe(),
        "metrics": {name: float(value) for name, value in sorted(evaluation.metrics.items())},
    }


def compute_table1_golden() -> dict[str, Any]:
    """Capability table: rendered text + evidence booleans (exact)."""
    return {
        "name": "table1",
        "schema": SCHEMA_VERSION,
        "tolerance": {"rtol": 0.0},
        "payload": {
            "rendered": render_table1(),
            "capability_evidence": verify_capability_evidence(),
        },
    }


def compute_table2_golden() -> dict[str, Any]:
    """Table II power models at the reference points (analytic, 1e-9)."""
    payload: dict[str, Any] = {}
    for arch, point in reference_operating_points().items():
        rows = power_model_rows(point)
        payload[arch] = {
            "rows": {row.block: row.power_w for row in rows},
            "total_w": float(sum(row.power_w for row in rows)),
        }
    return {
        "name": "table2",
        "schema": SCHEMA_VERSION,
        "tolerance": {"rtol": 1e-9},
        "payload": payload,
    }


def compute_fig7a_golden(executor: str = "serial") -> dict[str, Any]:
    """Miniature Fig. 7a sweep + headline optima (simulation, 1e-6)."""
    harness = make_harness("smoke")
    sweep = DesignSpaceExplorer(harness.evaluator).explore(
        fig7a_space(), name="fig7a-golden", executor=executor
    )
    result = analyze_fig7(sweep, min_accuracy=FIG7A_MIN_ACCURACY)
    return {
        "name": "fig7a",
        "schema": SCHEMA_VERSION,
        "tolerance": {"rtol": 1e-6},
        "payload": {
            "min_accuracy": FIG7A_MIN_ACCURACY,
            "points": [_optimum_payload(evaluation) for evaluation in sweep],
            "optimal_baseline": _optimum_payload(result.optimal_baseline),
            "optimal_cs": _optimum_payload(result.optimal_cs),
            "power_saving": float(result.power_saving),
        },
    }


_COMPUTERS: dict[str, Callable[..., dict[str, Any]]] = {
    "table1": compute_table1_golden,
    "table2": compute_table2_golden,
    "fig7a": compute_fig7a_golden,
}


def compute_golden(name: str, **kwargs: Any) -> dict[str, Any]:
    """Compute the golden ``name`` fresh (KeyError lists valid names)."""
    try:
        computer = _COMPUTERS[name]
    except KeyError:
        raise KeyError(f"no golden {name!r}; available: {list(GOLDEN_NAMES)}") from None
    return computer(**kwargs)


def golden_path(name: str, directory: Path | str | None = None) -> Path:
    base = Path(directory) if directory is not None else default_goldens_dir()
    return base / f"{name}.json"


def write_golden(golden: dict[str, Any], directory: Path | str | None = None) -> Path:
    """Serialise ``golden`` under its canonical filename; returns the path."""
    path = golden_path(golden["name"], directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    return path


def load_golden(name: str, directory: Path | str | None = None) -> dict[str, Any]:
    """Load a stored golden (FileNotFoundError names the refresh command)."""
    path = golden_path(name, directory)
    if not path.exists():
        raise FileNotFoundError(
            f"golden {name!r} missing at {path}; regenerate with "
            f"`python -m repro.testing.refresh_goldens`"
        )
    return json.loads(path.read_text())


def _compare(expected: Any, actual: Any, rtol: float, trail: str, errors: list[str]) -> None:
    if isinstance(expected, dict):
        if not isinstance(actual, dict) or set(expected) != set(actual):
            errors.append(f"{trail}: key mismatch {sorted(expected)} vs "
                          f"{sorted(actual) if isinstance(actual, dict) else type(actual).__name__}")
            return
        for key in expected:
            _compare(expected[key], actual[key], rtol, f"{trail}.{key}", errors)
    elif isinstance(expected, list):
        if not isinstance(actual, list) or len(expected) != len(actual):
            errors.append(f"{trail}: length mismatch")
            return
        for i, (exp, act) in enumerate(zip(expected, actual)):
            _compare(exp, act, rtol, f"{trail}[{i}]", errors)
    elif isinstance(expected, bool) or not isinstance(expected, (int, float)):
        if expected != actual:
            errors.append(f"{trail}: {expected!r} != {actual!r}")
    else:  # numeric: relative comparison per the golden's stated tolerance
        if not isinstance(actual, (int, float)) or isinstance(actual, bool):
            errors.append(f"{trail}: expected number, got {actual!r}")
        elif not math.isclose(float(expected), float(actual), rel_tol=rtol, abs_tol=0.0):
            errors.append(f"{trail}: {expected!r} != {actual!r} (rtol={rtol})")


def compare_to_golden(golden: dict[str, Any], fresh: dict[str, Any]) -> list[str]:
    """Mismatches between a stored golden and a freshly computed one.

    Compares the payloads under the *stored* golden's tolerance; an empty
    list means the fresh computation is within contract.
    """
    rtol = float(golden.get("tolerance", {}).get("rtol", 0.0))
    errors: list[str] = []
    _compare(golden["payload"], fresh["payload"], rtol, golden["name"], errors)
    return errors
