"""Backend-conformance harness: lock every kernel backend to the reference.

The registry's safety story is that enabling an accelerated backend can
never change a sweep's numbers beyond its *declared* contract: exact
backends must be bit-identical to the numpy reference, tolerance
backends must agree within their documented ``rtol``.  This module is
the enforcement mechanism — a deterministic problem generator plus
comparison drivers that ``tests/test_kernel_conformance.py`` (and any
out-of-tree backend) runs over every registered backend:

* :func:`solver_problems` / :func:`encoder_problems` — deterministic
  suites covering representative and degenerate inputs (zero
  measurements, single-atom dictionaries, zero operators, non-finite
  values); Hypothesis-generated cases in the test suite extend them
  with random shapes/dtypes.
* :func:`check_kernel` — run one kernel on one backend against the
  reference and return human-readable mismatch strings (empty = pass).
* :func:`check_backend` — the full sweep across kernels and problems.
* :func:`golden_replay` — recompute the ``fig7a`` golden under a
  backend and compare against the stored numbers, so conformance is
  checked end-to-end through the real evaluation chain, not just at the
  kernel boundary.

Adding a backend is "register + pass this suite": see
``docs/extending.md`` §13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.kernels import registry as default_registry
from repro.kernels.registry import REFERENCE_BACKEND, KernelRegistry


@dataclass(frozen=True)
class Problem:
    """One conformance case: a kernel name plus its call arguments."""

    name: str
    kernel: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)


def solver_problems(seed: int = 0) -> list[Problem]:
    """Deterministic solver cases (fista/ista/omp), degenerate cases included."""
    rng = np.random.default_rng(seed)
    problems: list[Problem] = []

    def lasso(name, a, y2, lam=0.05, n_iter=60, tol=1e-9):
        for kernel in ("fista", "ista"):
            problems.append(Problem(f"{kernel}:{name}", kernel, (a, np.atleast_2d(y2), lam, n_iter, tol)))

    a = rng.normal(size=(16, 48))
    lasso("gaussian_batch", a, rng.normal(size=(5, 16)))
    lasso("gaussian_single", a, rng.normal(size=(1, 16)))
    wide = rng.normal(size=(4, 64))
    lasso("very_underdetermined", wide, rng.normal(size=(3, 4)))
    lasso("zero_measurements", a, np.zeros((2, 16)))
    lasso("zero_operator", np.zeros((8, 12)), rng.normal(size=(2, 8)))
    lasso("single_atom", rng.normal(size=(6, 1)), rng.normal(size=(2, 6)))
    nonfinite = rng.normal(size=(2, 16))
    nonfinite[0, 3] = np.nan
    nonfinite[1, 7] = np.inf
    lasso("non_finite_measurements", a, nonfinite, n_iter=8)
    ill = rng.normal(size=(16, 24))
    ill[:, 1] = ill[:, 0]  # duplicate atom: correlated dictionary
    lasso("duplicate_atoms", ill, rng.normal(size=(2, 16)))

    def greedy(name, a, y, sparsity=4, tol=0.0):
        problems.append(Problem(f"omp:{name}", "omp", (a, y, sparsity, tol)))

    greedy("gaussian", a, rng.normal(size=16))
    greedy("zero_measurements", a, np.zeros(16))
    greedy("single_atom", rng.normal(size=(6, 1)), rng.normal(size=6), sparsity=1)
    greedy("early_exit", a, a @ _sparse_vector(48, 3, rng), sparsity=8, tol=1e-6)
    greedy("sparsity_exceeds_rows", rng.normal(size=(3, 10)), rng.normal(size=3), sparsity=9)
    return problems


def _sparse_vector(n: int, k: int, rng: np.random.Generator) -> np.ndarray:
    x = np.zeros(n)
    x[rng.choice(n, size=k, replace=False)] = rng.normal(size=k)
    return x


def encoder_problems(seed: int = 0) -> list[Problem]:
    """Deterministic encoder-multiply cases (noise on/off, single frame)."""
    rng = np.random.default_rng(seed + 1)
    problems: list[Problem] = []

    def case(name, n=24, m=8, s=2, n_frames=3, noise=True, kt=4.14e-21):
        routes = np.stack([
            np.sort(rng.choice(m, size=s, replace=False)) for _ in range(n)
        ]).astype(np.int64)
        frames = rng.normal(size=(n_frames, n))
        c_sample = 1e-14 * (1.0 + rng.normal(0, 0.01, size=s))
        c_hold = 8e-14 * (1.0 + rng.normal(0, 0.01, size=m))
        sample_draws = rng.normal(size=(n, n_frames, s)) * 1e-4 if noise else None
        share_draws = rng.normal(size=(n, n_frames, s)) if noise else None
        problems.append(
            Problem(
                f"encoder_multiply:{name}",
                "encoder_multiply",
                (frames, routes, c_sample, c_hold, kt if noise else 0.0,
                 sample_draws, share_draws),
            )
        )

    case("noisy_batch")
    case("noiseless", noise=False)
    case("single_frame", n_frames=1)
    case("dense_routes", m=4, s=3)
    return problems


def default_problems(seed: int = 0) -> list[Problem]:
    return solver_problems(seed) + encoder_problems(seed)


def _compare_arrays(name: str, got, want, *, exact: bool, rtol: float) -> list[str]:
    got = np.asarray(got, dtype=np.float64)
    want = np.asarray(want, dtype=np.float64)
    if got.shape != want.shape:
        return [f"{name}: shape {got.shape} != reference {want.shape}"]
    if exact:
        if not np.array_equal(got, want, equal_nan=True):
            worst = float(np.nanmax(np.abs(got - want))) if got.size else 0.0
            return [f"{name}: not bit-identical to reference (max abs diff {worst:.3e})"]
        return []
    finite_mismatch = ~(np.isfinite(got) == np.isfinite(want))
    if np.any(finite_mismatch):
        return [f"{name}: finiteness pattern differs from reference"]
    if not np.allclose(got, want, rtol=rtol, atol=rtol, equal_nan=True):
        denom = np.maximum(np.abs(want), 1.0)
        worst = float(np.nanmax(np.abs(got - want) / denom)) if got.size else 0.0
        return [f"{name}: exceeds rtol={rtol:g} (worst relative error {worst:.3e})"]
    return []


def check_kernel(
    backend_name: str,
    problem: Problem,
    *,
    registry: KernelRegistry | None = None,
) -> list[str]:
    """Run one problem on ``backend_name`` vs the reference; [] means pass.

    The backend implementation is called *directly* (not through
    ``registry.call``) so a failure surfaces as a mismatch instead of
    being masked by auto-fallback.
    """
    reg = registry if registry is not None else default_registry
    backend = reg.backend(backend_name)
    reference = reg.backend(REFERENCE_BACKEND)
    if problem.kernel not in reference.kernels:
        return [f"{problem.name}: no reference implementation for {problem.kernel!r}"]
    if problem.kernel not in backend.kernels:
        return []  # not implemented: dispatch falls back, nothing to conform
    want = reference.kernels[problem.kernel](*problem.args, **problem.kwargs)
    try:
        got = backend.kernels[problem.kernel](*problem.args, **problem.kwargs)
    except Exception as exc:  # noqa: BLE001 - reported as a conformance failure
        return [f"{problem.name}: {backend_name} raised {type(exc).__name__}: {exc}"]
    mismatches: list[str] = []
    if isinstance(want, tuple):
        if not isinstance(got, tuple) or len(got) != len(want):
            return [f"{problem.name}: return arity differs from reference"]
        for i, (g, w) in enumerate(zip(got, want)):
            if isinstance(w, (int, np.integer)) and backend.exact and g != w:
                mismatches.append(f"{problem.name}[{i}]: {g} != reference {w}")
            elif isinstance(w, np.ndarray):
                mismatches.extend(
                    _compare_arrays(
                        f"{problem.name}[{i}]", g, w, exact=backend.exact, rtol=backend.rtol
                    )
                )
    else:
        mismatches.extend(
            _compare_arrays(problem.name, got, want, exact=backend.exact, rtol=backend.rtol)
        )
    return mismatches


def check_backend(
    backend_name: str,
    *,
    problems: list[Problem] | None = None,
    registry: KernelRegistry | None = None,
    seed: int = 0,
) -> list[str]:
    """Run the full deterministic suite for one backend; [] means pass."""
    reg = registry if registry is not None else default_registry
    backend = reg.backend(backend_name)
    if not backend.available:
        return []  # unavailable backends fall back; nothing to conform
    cases = problems if problems is not None else default_problems(seed)
    mismatches: list[str] = []
    for problem in cases:
        mismatches.extend(check_kernel(backend_name, problem, registry=reg))
    return mismatches


def conformant_backends(registry: KernelRegistry | None = None) -> list[str]:
    """Names of registered, available, non-reference backends."""
    reg = registry if registry is not None else default_registry
    return [
        b.name
        for b in reg.backends()
        if b.name != REFERENCE_BACKEND and b.available and b.kernels
    ]


def golden_replay(backend_name: str, golden: dict[str, Any] | None = None) -> list[str]:
    """Recompute the fig7a golden with ``backend_name`` active; [] = pass.

    Exercises the backend through the full evaluation chain (encoder,
    solver, scoring) rather than at the kernel boundary.  The stored
    golden's own tolerance applies — it already reflects what the
    downstream figures can absorb — widened to the backend's documented
    ``rtol`` if that is looser.
    """
    from repro.testing.goldens import compare_to_golden, compute_golden, load_golden

    reg = default_registry
    backend = reg.backend(backend_name)
    if golden is None:
        golden = load_golden("fig7a")
    if not backend.exact and backend.rtol > float(golden.get("tolerance", {}).get("rtol", 0.0)):
        golden = dict(golden)
        golden["tolerance"] = dict(golden.get("tolerance", {}), rtol=backend.rtol)
    with reg.use_backend(backend_name):
        fresh = compute_golden("fig7a")
    return compare_to_golden(golden, fresh)
