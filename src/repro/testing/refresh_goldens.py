"""Regenerate the golden regression files under ``tests/goldens/``.

Usage::

    python -m repro.testing.refresh_goldens [--only NAME ...] [--output DIR]

Run this after an *intentional* change to the numbers a golden locks
down, and commit the regenerated JSON together with the code change so
the diff review shows exactly which headline values moved.
"""

from __future__ import annotations

import argparse

from repro.testing.goldens import GOLDEN_NAMES, compute_golden, write_golden


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        nargs="+",
        choices=GOLDEN_NAMES,
        default=list(GOLDEN_NAMES),
        help="subset of goldens to regenerate (default: all)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="target directory (default: this checkout's tests/goldens/)",
    )
    args = parser.parse_args(argv)
    for name in args.only:
        golden = compute_golden(name)
        path = write_golden(golden, args.output)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
