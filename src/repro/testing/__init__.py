"""Regression-testing support: golden-number generation and comparison.

The :mod:`repro.testing.goldens` module computes the headline artefacts
of the paper tables/figures in a canonical JSON form;
``python -m repro.testing.refresh_goldens`` writes them under
``tests/goldens/`` and ``tests/test_goldens.py`` fails when a code change
drifts them beyond each golden's stated tolerance.
"""

from repro.testing.goldens import (
    GOLDEN_NAMES,
    compare_to_golden,
    compute_golden,
    default_goldens_dir,
    load_golden,
    write_golden,
)

__all__ = [
    "GOLDEN_NAMES",
    "compare_to_golden",
    "compute_golden",
    "default_goldens_dir",
    "load_golden",
    "write_golden",
]
