"""EEG record and dataset containers.

The paper evaluates on 500 single-channel EEG segments of 23.6 s sampled
at 173.61 Hz (the Bonn corpus layout), labelled seizure / non-seizure.
These containers hold any such corpus -- the bundled synthetic generator
(:mod:`repro.eeg.synthetic`) or user-supplied recordings -- and provide
the split/iteration plumbing the detection goal function needs.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import make_rng
from repro.util.validation import check_positive

#: Record labels.
NON_SEIZURE = 0
SEIZURE = 1


@dataclass
class EegRecord:
    """One single-channel EEG segment.

    Attributes
    ----------
    data:
        Samples in volts (EEG amplitudes are tens of microvolts).
    sample_rate:
        Hz.
    label:
        :data:`SEIZURE` or :data:`NON_SEIZURE`.
    record_id:
        Stable identifier (used in seeding and reporting).
    meta:
        Free-form provenance (generator parameters, subject, ...).
    """

    data: np.ndarray
    sample_rate: float
    label: int
    record_id: str
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float64)
        if self.data.ndim != 1:
            raise ValueError(f"EEG record must be 1-D, got shape {self.data.shape}")
        check_positive("sample_rate", self.sample_rate)
        if self.label not in (NON_SEIZURE, SEIZURE):
            raise ValueError(f"label must be 0 or 1, got {self.label}")

    @property
    def duration(self) -> float:
        """Record length in seconds."""
        return self.data.size / self.sample_rate

    @property
    def is_seizure(self) -> bool:
        """True for ictal records."""
        return self.label == SEIZURE


class EegDataset:
    """An ordered collection of labelled EEG records."""

    def __init__(self, records: Sequence[EegRecord], name: str = "eeg"):
        if not records:
            raise ValueError("dataset must contain at least one record")
        rates = {record.sample_rate for record in records}
        if len(rates) > 1:
            raise ValueError(f"records have mixed sample rates: {sorted(rates)}")
        self.name = name
        self._records = list(records)

    # --- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EegRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> EegRecord:
        return self._records[index]

    @property
    def sample_rate(self) -> float:
        """Common sample rate of all records, Hz."""
        return self._records[0].sample_rate

    @property
    def records(self) -> list[EegRecord]:
        """The records (list copy)."""
        return list(self._records)

    def labels(self) -> np.ndarray:
        """Label vector, shape (n_records,)."""
        return np.array([record.label for record in self._records], dtype=int)

    def seizure_fraction(self) -> float:
        """Fraction of ictal records."""
        return float(np.mean(self.labels()))

    # --- manipulation ---------------------------------------------------------

    def subset(self, indices: Sequence[int], name: str | None = None) -> "EegDataset":
        """Dataset restricted to ``indices`` (order preserved)."""
        picked = [self._records[i] for i in indices]
        return EegDataset(picked, name=name or f"{self.name}-subset")

    def split(
        self, train_fraction: float = 0.5, seed: int | None = None
    ) -> tuple["EegDataset", "EegDataset"]:
        """Stratified train/test split.

        Shuffles within each label class so both splits keep the dataset's
        seizure fraction, then returns (train, test).
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        rng = make_rng(seed)
        labels = self.labels()
        train_idx: list[int] = []
        test_idx: list[int] = []
        for label in (NON_SEIZURE, SEIZURE):
            members = np.flatnonzero(labels == label)
            rng.shuffle(members)
            cut = int(round(train_fraction * members.size))
            train_idx.extend(members[:cut].tolist())
            test_idx.extend(members[cut:].tolist())
        train_idx.sort()
        test_idx.sort()
        return (
            self.subset(train_idx, name=f"{self.name}-train"),
            self.subset(test_idx, name=f"{self.name}-test"),
        )

    def stacked(self, n_samples: int | None = None) -> np.ndarray:
        """All records as a (n_records, n_samples) matrix.

        Records are truncated to the shortest record (or ``n_samples``).
        """
        min_len = min(record.data.size for record in self._records)
        if n_samples is not None:
            if n_samples > min_len:
                raise ValueError(
                    f"requested {n_samples} samples but shortest record has {min_len}"
                )
            min_len = n_samples
        return np.stack([record.data[:min_len] for record in self._records])
