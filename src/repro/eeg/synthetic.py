"""Synthetic Bonn-like EEG generator (the paper's Step 4 substitute).

The paper inserts real EEG from the Bonn corpus (500 segments of 23.6 s at
173.61 Hz, ictal and non-ictal).  That corpus is not redistributable inside
this offline repo, so this module synthesises a statistically faithful
stand-in with the same layout:

* **Background activity** -- 1/f^beta coloured noise (the canonical EEG
  spectral slope, beta ~ 1.7 in the 0.5-40 Hz band) plus amplitude-
  modulated band rhythms (delta/theta/alpha/beta) with randomised per-
  record band weights, scaled to ~40-60 uVrms.
* **Interictal artefacts** -- occasional high-amplitude transients (eye
  blinks, muscle bursts) on a subset of non-seizure records, so the
  non-seizure class is not trivially clean.
* **Ictal records** -- two clinically grounded signatures scaled by a
  per-record *severity* drawn log-uniformly from a continuous range:
  a rhythmic 2.5-4.5 Hz spike-and-wave discharge (the generalised-seizure
  signature of Bonn set E) and **low-voltage fast activity** (LVFA): a
  rhythmic 35-45 Hz gamma burst train, the classical low-amplitude seizure
  onset marker.  The LVFA component is the linchpin of the accuracy
  experiments: it lives where the 1/f background carries almost no power,
  so its few-microvolt amplitude competes *directly* with the front-end's
  1-20 uVrms noise sweep -- detection accuracy therefore degrades smoothly
  and monotonically with the noise floor (and with quantisation), exactly
  the sensitivity the paper's Fig. 7 b) exercises.  Severe records are
  obvious from the spike-wave alone; mild records are only detectable via
  the gamma marker while the front-end is quiet enough.

Why the substitution preserves the experiment: the framework only needs a
signal class that (a) has EEG-like amplitude and spectra so the analog
models operate at realistic signal levels, (b) is compressible in the DCT
basis (1/f + narrowband rhythms are), and (c) supports a seizure/
non-seizure decision whose accuracy responds monotonically to front-end
signal degradation.  All three are matched by construction.

Determinism: every record derives its RNG from (dataset seed, record id),
so any record can be regenerated in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eeg.dataset import NON_SEIZURE, SEIZURE, EegDataset, EegRecord
from repro.util.constants import MICRO
from repro.util.rng import derive_seed, make_rng
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)

#: Classical EEG rhythm bands, Hz.
BANDS = {
    "delta": (0.5, 4.0),
    "theta": (4.0, 8.0),
    "alpha": (8.0, 13.0),
    "beta": (13.0, 30.0),
}

#: Bonn corpus geometry.
BONN_SAMPLE_RATE = 173.61
BONN_DURATION = 23.6


@dataclass(frozen=True)
class SyntheticEegConfig:
    """Tunable parameters of the generator.

    Defaults reproduce the Bonn-like corpus used by all experiments.
    """

    sample_rate: float = BONN_SAMPLE_RATE
    duration: float = BONN_DURATION
    background_rms: float = 50.0 * MICRO
    spectral_slope: float = 2.0
    artifact_probability: float = 0.4
    seizure_frequency_range: tuple[float, float] = (2.5, 4.5)
    seizure_severity_range: tuple[float, float] = (0.1, 1.0)
    spike_weight: float = 0.5
    gamma_weight: float = 0.7
    seizure_gamma_band: tuple[float, float] = (35.0, 45.0)
    spike_sharpness: float = 8.0

    def __post_init__(self) -> None:
        check_positive("sample_rate", self.sample_rate)
        check_positive("duration", self.duration)
        check_positive("background_rms", self.background_rms)
        check_positive("spectral_slope", self.spectral_slope)
        check_fraction("artifact_probability", self.artifact_probability)
        lo, hi = self.seizure_frequency_range
        if not 0 < lo < hi < self.sample_rate / 2:
            raise ValueError(f"invalid seizure_frequency_range {self.seizure_frequency_range}")
        lo_s, hi_s = self.seizure_severity_range
        if not 0.0 < lo_s < hi_s:
            raise ValueError(f"invalid seizure_severity_range {self.seizure_severity_range}")
        g_lo, g_hi = self.seizure_gamma_band
        if not 0 < g_lo < g_hi < self.sample_rate / 2:
            raise ValueError(f"invalid seizure_gamma_band {self.seizure_gamma_band}")
        check_non_negative("spike_weight", self.spike_weight)
        check_non_negative("gamma_weight", self.gamma_weight)

    @property
    def n_samples(self) -> int:
        """Samples per record."""
        return int(round(self.sample_rate * self.duration))


def colored_noise(
    n_samples: int,
    slope: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Unit-variance 1/f^slope noise via frequency-domain shaping."""
    n_samples = check_positive_int("n_samples", n_samples)
    white = rng.normal(size=n_samples)
    spectrum = np.fft.rfft(white)
    freqs = np.fft.rfftfreq(n_samples, d=1.0)
    freqs[0] = freqs[1]  # avoid division by zero at DC
    spectrum *= freqs ** (-slope / 2.0)
    noise = np.fft.irfft(spectrum, n=n_samples)
    std = np.std(noise)
    return noise / (std if std > 0 else 1.0)


def _band_rhythm(
    n_samples: int,
    sample_rate: float,
    band: tuple[float, float],
    rng: np.random.Generator,
) -> np.ndarray:
    """Amplitude-modulated narrowband oscillation within ``band``."""
    low, high = band
    freq = rng.uniform(low, min(high, sample_rate / 2 * 0.9))
    t = np.arange(n_samples) / sample_rate
    carrier = np.sin(2.0 * np.pi * freq * t + rng.uniform(0, 2 * np.pi))
    # Slow random envelope (waxing/waning spindles).
    envelope = colored_noise(n_samples, 2.0, rng)
    envelope = 0.5 + 0.5 * (envelope - envelope.min()) / (np.ptp(envelope) + 1e-12)
    return carrier * envelope


def _spike_wave(
    n_samples: int,
    sample_rate: float,
    frequency: float,
    sharpness: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Rhythmic spike-and-wave discharge (harmonically rich limit cycle).

    A sharpened sinusoid ``sign(s) * |s|^(1/sharpness)`` with a slower wave
    component and small cycle-to-cycle frequency jitter -- the classic
    3 Hz generalised spike-wave morphology.
    """
    t = np.arange(n_samples) / sample_rate
    jitter = 1.0 + 0.05 * colored_noise(n_samples, 2.0, rng)
    phase = 2.0 * np.pi * frequency * np.cumsum(jitter) / sample_rate
    s = np.sin(phase)
    spikes = np.sign(s) * np.abs(s) ** (1.0 / sharpness)
    wave = 0.6 * np.sin(phase / 1.0 - np.pi / 3.0)
    discharge = spikes + wave
    return discharge / np.std(discharge)


def _gamma_burst_train(
    n_samples: int,
    sample_rate: float,
    band: tuple[float, float],
    rng: np.random.Generator,
) -> np.ndarray:
    """Low-voltage fast activity: amplitude-modulated gamma oscillation.

    A narrowband oscillation inside ``band`` whose envelope waxes and
    wanes in ~1 s bursts (the ictal LVFA morphology).  Unit RMS.
    """
    low, high = band
    freq = rng.uniform(low, high)
    t = np.arange(n_samples) / sample_rate
    jitter = 1.0 + 0.01 * colored_noise(n_samples, 2.0, rng)
    phase = 2.0 * np.pi * freq * np.cumsum(jitter) / sample_rate
    carrier = np.sin(phase + rng.uniform(0, 2 * np.pi))
    envelope = colored_noise(n_samples, 2.5, rng)
    envelope = 0.35 + 0.65 * (envelope - envelope.min()) / (np.ptp(envelope) + 1e-12)
    burst = carrier * envelope
    return burst / np.std(burst)


def _artifact(
    n_samples: int,
    sample_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sparse transient artefacts: eye-blink-like lobes + muscle bursts."""
    out = np.zeros(n_samples)
    n_blinks = rng.integers(1, 4)
    for _ in range(n_blinks):
        center = rng.integers(0, n_samples)
        width = int(0.3 * sample_rate * rng.uniform(0.7, 1.5))
        span = np.arange(max(0, center - 3 * width), min(n_samples, center + 3 * width))
        out[span] += rng.uniform(2.0, 4.0) * np.exp(-0.5 * ((span - center) / width) ** 2)
    if rng.random() < 0.3:  # one muscle burst (broadband EMG)
        start = rng.integers(0, max(1, n_samples - int(sample_rate)))
        stop = start + int(sample_rate * rng.uniform(0.3, 1.0))
        burst = rng.normal(size=max(0, min(stop, n_samples) - start))
        out[start : start + burst.size] += 0.8 * burst
    return out


def generate_background(config: SyntheticEegConfig, rng: np.random.Generator) -> np.ndarray:
    """Background (non-ictal) EEG in volts."""
    n = config.n_samples
    signal = colored_noise(n, config.spectral_slope, rng)
    weights = rng.dirichlet(np.ones(len(BANDS))) * rng.uniform(0.5, 1.2)
    for weight, band in zip(weights, BANDS.values()):
        signal = signal + weight * _band_rhythm(n, config.sample_rate, band, rng)
    signal = signal / np.std(signal) * config.background_rms
    return signal - np.mean(signal)


def generate_record(
    kind: str,
    config: SyntheticEegConfig,
    seed: int,
    record_id: str,
) -> EegRecord:
    """Generate one record of ``kind`` (``"background"``/``"artifact"``/``"seizure"``)."""
    rng = make_rng(seed)
    background = generate_background(config, rng)
    meta: dict = {"kind": kind, "seed": seed}
    if kind == "background":
        data, label = background, NON_SEIZURE
    elif kind == "artifact":
        artifact = _artifact(config.n_samples, config.sample_rate, rng)
        data = background + artifact * config.background_rms
        label = NON_SEIZURE
    elif kind == "seizure":
        frequency = rng.uniform(*config.seizure_frequency_range)
        severity = float(np.exp(rng.uniform(*np.log(config.seizure_severity_range))))
        discharge = _spike_wave(
            config.n_samples, config.sample_rate, frequency, config.spike_sharpness, rng
        )
        lvfa = _gamma_burst_train(
            config.n_samples, config.sample_rate, config.seizure_gamma_band, rng
        )
        amplitude = severity * config.background_rms
        data = (
            background
            + config.spike_weight * amplitude * discharge
            + config.gamma_weight * amplitude * lvfa
        )
        label = SEIZURE
        meta.update({"frequency": frequency, "severity": severity})
    else:
        raise ValueError(f"unknown record kind {kind!r}")
    return EegRecord(
        data=data,
        sample_rate=config.sample_rate,
        label=label,
        record_id=record_id,
        meta=meta,
    )


def make_bonn_like_dataset(
    n_records: int = 500,
    seizure_fraction: float = 0.2,
    config: SyntheticEegConfig | None = None,
    seed: int = 2022,
    name: str = "bonn-like",
) -> EegDataset:
    """Generate the full synthetic corpus.

    Defaults mirror the paper's evaluation set: 500 records of 23.6 s at
    173.61 Hz with the Bonn corpus's 1-in-5 ictal share (set E of A-E).
    Non-seizure records are a mix of clean background and artefact-bearing
    segments per ``config.artifact_probability``.
    """
    n_records = check_positive_int("n_records", n_records)
    check_fraction("seizure_fraction", seizure_fraction)
    config = config or SyntheticEegConfig()
    rng = make_rng(seed)
    n_seizure = int(round(n_records * seizure_fraction))
    kinds = ["seizure"] * n_seizure
    for _ in range(n_records - n_seizure):
        kinds.append("artifact" if rng.random() < config.artifact_probability else "background")
    rng.shuffle(kinds)
    records = [
        generate_record(
            kind,
            config,
            seed=derive_seed(seed, f"record-{index}"),
            record_id=f"{name}-{index:04d}",
        )
        for index, kind in enumerate(kinds)
    ]
    return EegDataset(records, name=name)
