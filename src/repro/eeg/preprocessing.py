"""EEG preprocessing: resampling, filtering, windowing.

Implements the paper's Step 4 conditioning: the 173.61 Hz Bonn records are
upsampled to 512 Hz to mimic a continuous-time signal entering the analog
front-end.  FFT-based resampling handles the non-rational rate ratio
exactly on the fixed-length records.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.eeg.dataset import EegDataset, EegRecord
from repro.util.validation import check_positive, check_positive_int

#: The simulation rate used by the paper after upsampling.
SIMULATION_RATE = 512.0


def resample_record(record: EegRecord, new_rate: float) -> EegRecord:
    """Resample one record to ``new_rate`` (FFT method, exact length ratio)."""
    check_positive("new_rate", new_rate)
    if new_rate == record.sample_rate:
        return record
    n_new = int(round(record.data.size * new_rate / record.sample_rate))
    data = sp_signal.resample(record.data, n_new)
    return EegRecord(
        data=data,
        sample_rate=new_rate,
        label=record.label,
        record_id=record.record_id,
        meta={**record.meta, "resampled_from": record.sample_rate},
    )


def resample_dataset(dataset: EegDataset, new_rate: float = SIMULATION_RATE) -> EegDataset:
    """Resample every record (the paper's 173.61 -> 512 Hz upsampling)."""
    return EegDataset(
        [resample_record(record, new_rate) for record in dataset],
        name=f"{dataset.name}@{new_rate:g}Hz",
    )


def bandpass_record(record: EegRecord, low: float, high: float, order: int = 4) -> EegRecord:
    """Zero-phase Butterworth band-pass (standard EEG conditioning)."""
    check_positive("low", low)
    if not low < high < record.sample_rate / 2:
        raise ValueError(
            f"need low < high < Nyquist; got ({low}, {high}) at fs={record.sample_rate}"
        )
    sos = sp_signal.butter(order, [low, high], btype="band", output="sos", fs=record.sample_rate)
    data = sp_signal.sosfiltfilt(sos, record.data)
    return EegRecord(
        data=data,
        sample_rate=record.sample_rate,
        label=record.label,
        record_id=record.record_id,
        meta={**record.meta, "bandpass": (low, high)},
    )


def window_record(
    record: EegRecord, window_samples: int, overlap: float = 0.0
) -> np.ndarray:
    """Slice a record into (n_windows, window_samples) frames.

    ``overlap`` is the fractional overlap between consecutive windows
    (0 = disjoint).  Trailing samples that do not fill a window are
    dropped.
    """
    window_samples = check_positive_int("window_samples", window_samples)
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")
    step = max(1, int(round(window_samples * (1.0 - overlap))))
    starts = range(0, record.data.size - window_samples + 1, step)
    windows = [record.data[s : s + window_samples] for s in starts]
    if not windows:
        raise ValueError(
            f"record of {record.data.size} samples is shorter than one window "
            f"({window_samples})"
        )
    return np.stack(windows)
