"""EEG substrate: dataset containers, synthetic Bonn-like generator,
preprocessing (Step 4 of the paper's flow)."""

from repro.eeg.dataset import NON_SEIZURE, SEIZURE, EegDataset, EegRecord
from repro.eeg.preprocessing import (
    SIMULATION_RATE,
    bandpass_record,
    resample_dataset,
    resample_record,
    window_record,
)
from repro.eeg.synthetic import (
    BANDS,
    BONN_DURATION,
    BONN_SAMPLE_RATE,
    SyntheticEegConfig,
    colored_noise,
    generate_background,
    generate_record,
    make_bonn_like_dataset,
)

__all__ = [
    "BANDS",
    "BONN_DURATION",
    "BONN_SAMPLE_RATE",
    "EegDataset",
    "EegRecord",
    "NON_SEIZURE",
    "SEIZURE",
    "SIMULATION_RATE",
    "SyntheticEegConfig",
    "bandpass_record",
    "colored_noise",
    "generate_background",
    "generate_record",
    "make_bonn_like_dataset",
    "resample_dataset",
    "resample_record",
    "window_record",
]
