"""Fig. 8 benchmark: per-block power breakdown of the two optimal points.

The paper's observations, asserted on the reproduced optima:

* the CS optimum spends much less **transmitter** power (compression);
* it also spends less (or at most equal) **LNA** power -- the non-obvious
  averaging-effect insight: CS tolerates a higher input noise floor;
* the **CS encoder** adds digital power, but less than the savings.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig8 import analyze_fig8


def test_fig8_power_breakdown(benchmark, search_sweep, min_accuracy):
    result = run_once(benchmark, analyze_fig8, search_sweep, min_accuracy=min_accuracy)
    print("\n" + result.savings_table())

    # Transmitter saving is the headline compression effect.
    assert result.delta_uw("transmitter") < 0

    # LNA power at the CS optimum is no higher than at the baseline
    # optimum (strictly lower when the optima sit at different noise
    # floors -- the paper's averaging-effect finding).
    assert result.delta_uw("lna") <= 1e-9

    # The encoder's digital adder exists but is smaller than the total
    # TX+LNA saving (paper: "only a marginal increase").
    encoder_cost = result.delta_uw("cs_encoder")
    assert encoder_cost > 0
    saving = -(result.delta_uw("transmitter") + result.delta_uw("lna"))
    assert encoder_cost < saving

    # Net: the CS optimum consumes less total power.
    assert result.cs.metric("power_uw") < result.baseline.metric("power_uw")

    # Both optima satisfy the accuracy bound they were selected under.
    assert result.baseline.metric("accuracy") >= min_accuracy
    assert result.cs.metric("accuracy") >= min_accuracy
