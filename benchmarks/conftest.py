"""Shared benchmark fixtures.

The Fig. 7-10 benchmarks share one search-space sweep (cached per scale in
the experiment runner), so the whole suite costs a single sweep plus the
cheap per-figure analyses.  Scale selection: ``REPRO_SCALE`` env var
(``smoke`` default; ``small`` is the EXPERIMENTS.md reporting scale).
"""

import pytest

from repro.experiments.runner import active_scale, make_harness, run_search_space

#: Accuracy bound used when selecting the "optimal point" per scale.  The
#: paper's 98 % bound is kept at the small/paper scales; the smoke scale
#: (24 records x 5.7 s) relaxes it to 90 % because the short records give
#: the spectral oracle ~1.4 Welch segments, raising its variance floor --
#: smoke checks code paths and shape, not absolute accuracy levels.
MIN_ACCURACY_BY_SCALE = {"smoke": 0.90, "small": 0.98, "paper": 0.98}


@pytest.fixture(scope="session")
def scale():
    """The active experiment scale."""
    return active_scale()


@pytest.fixture(scope="session")
def min_accuracy(scale):
    """Scale-appropriate optimal-point accuracy bound."""
    return MIN_ACCURACY_BY_SCALE[scale.name]


@pytest.fixture(scope="session")
def harness(scale):
    """Dataset + detector + evaluator (built once per session)."""
    return make_harness(scale.name)


@pytest.fixture(scope="session")
def search_sweep(scale):
    """The shared Fig. 7 search-space exploration."""
    return run_search_space(scale.name)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
