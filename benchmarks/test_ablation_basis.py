"""Ablation: sparsifying-basis choice for EEG reconstruction.

DESIGN.md commits the experiments to DCT + light shrinkage.  This ablation
justifies the choice: it reconstructs the evaluation corpus through the
same CS front-end with three bases and compares waveform SNR and detection
accuracy.  The DCT must preserve the narrowband ictal markers (rhythms,
low-voltage fast activity) at least as well as the db4 wavelet, and both
must beat the identity basis (EEG is not time-sparse).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.explorer import FrontEndEvaluator
from repro.cs.dictionaries import dct_basis, identity_basis, wavelet_basis
from repro.cs.reconstruction import Reconstructor
from repro.power.technology import DesignPoint


def run_basis_ablation(harness):
    point = DesignPoint(n_bits=8, lna_noise_rms=8e-6, use_cs=True, cs_m=150)
    n = point.cs_n_phi
    results = {}
    for name, basis in (
        ("dct", dct_basis(n)),
        ("db4", wavelet_basis(n, "db4")),
        ("identity", identity_basis(n)),
    ):
        evaluator = FrontEndEvaluator(
            harness.records,
            harness.labels,
            harness.sample_rate,
            detector=harness.detector,
            seed=1,
            reconstructor_factory=lambda p, b=basis: Reconstructor(
                basis=b, method="fista", lam_rel=0.002, n_iter=150
            ),
        )
        evaluation = evaluator.evaluate(point)
        results[name] = {
            "snr_db": evaluation.metrics["snr_db"],
            "accuracy": evaluation.metrics["accuracy"],
        }
    return results


def test_ablation_basis(benchmark, harness):
    results = run_once(benchmark, run_basis_ablation, harness)
    print()
    for name, metrics in results.items():
        print(f"{name:<10} snr={metrics['snr_db']:6.2f} dB  accuracy={metrics['accuracy']:.3f}")

    # DCT is the production choice: it must match-or-beat db4 on the
    # detection goal (db4 smears the gamma marker across shrunk detail
    # coefficients) and clearly beat the identity basis.
    assert results["dct"]["accuracy"] >= results["db4"]["accuracy"] - 0.01
    assert results["dct"]["accuracy"] > results["identity"]["accuracy"] + 0.02
    assert results["dct"]["snr_db"] > results["identity"]["snr_db"]
    assert np.isfinite(results["dct"]["snr_db"])
