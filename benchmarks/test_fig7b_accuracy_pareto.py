"""Fig. 7 b) benchmark: detection-accuracy-vs-power Pareto fronts.

The paper's headline: with the application metric (seizure detection
accuracy) instead of SNR, **the CS system outperforms the baseline over
the whole detection range**, and the optimal (min power, accuracy >= 98 %)
points are baseline 98.1 % @ 8.8 uW vs CS 99.3 % @ 2.44 uW -- a 3.6x
saving.

Reduced-scale assertions (shape, not absolute numbers):

* CS dominance: every baseline front point is matched by a CS point at
  no more power and comparable-or-better accuracy;
* both optimal points exist and CS saves at least 2x power;
* the choice of metric matters: the CS/baseline ordering at the low-power
  end differs from the SNR view of Fig. 7 a).
"""

from benchmarks.conftest import run_once
from repro.experiments.fig7 import analyze_fig7, render_front


def test_fig7b_accuracy_pareto(benchmark, search_sweep, scale, min_accuracy):
    result = run_once(benchmark, analyze_fig7, search_sweep, min_accuracy=min_accuracy)
    print(
        "\nbaseline accuracy front:\n"
        + render_front(result.accuracy_front_baseline, "accuracy")
    )
    print("\ncs accuracy front:\n" + render_front(result.accuracy_front_cs, "accuracy"))
    print("\n" + result.summary())
    print("(paper: baseline 98.1% @ 8.8 uW, CS 99.3% @ 2.44 uW, 3.6x)")

    assert result.accuracy_front_baseline, "baseline front is empty"
    assert result.accuracy_front_cs, "CS front is empty"

    # CS dominance across the range: for every baseline front point there
    # is a CS point with no more power and accuracy within a small margin
    # (margin covers the accuracy estimator's resolution at this scale).
    margin = 0.02 if scale.name == "smoke" else 0.01
    cs_points = [(e.metric("power_uw"), e.metric("accuracy")) for e in result.cs]
    for baseline_eval in result.accuracy_front_baseline:
        b_power = baseline_eval.metric("power_uw")
        b_acc = baseline_eval.metric("accuracy")
        assert any(
            power <= b_power and accuracy >= b_acc - margin
            for power, accuracy in cs_points
        ), f"no CS point matches baseline front point ({b_power:.2f} uW, {b_acc:.3f})"

    # Optimal points: both feasible, CS materially cheaper.
    assert result.optimal_baseline is not None, "baseline never reaches the accuracy bound"
    assert result.optimal_cs is not None, "CS never reaches the accuracy bound"
    saving = result.power_saving
    assert saving is not None and saving > 2.0, f"power saving only {saving}"

    # Metric choice matters (the paper's Fig. 7 punchline): with the
    # accuracy goal the optimal CS point needs less power than the optimal
    # baseline, even though the baseline dominates the high-SNR regime.
    assert result.optimal_cs.metric("power_uw") < result.optimal_baseline.metric("power_uw")
