"""Ablation: passive analog CS encoder vs digital MAC CS encoder.

The paper's Section III motivates the framework by exactly this
exploration ("digital vs analog or active vs passive compressive
sensing").  Both encoders transmit the same compressed stream, but they
split the work differently:

* **analog (paper's proposal)** -- passive charge sharing before the ADC:
  the converter runs at the compressed rate, at the cost of analog
  non-idealities (kT/C noise, mismatch, weighted effective matrix);
* **digital (Chen [2] style)** -- exact binary MAC after a *full-rate*
  ADC: no analog encoder artefacts, but every sample is converted and the
  MAC logic switches at the input rate.

The benchmark quantifies the trade at the paper's operating point and
asserts the structural facts: the digital variant strictly costs more
power (full-rate conversion + MAC), both compress the transmitter
equally, and both recover the signal well enough to detect seizures.
"""

from benchmarks.conftest import run_once
from repro.power.models import chain_power
from repro.power.technology import DesignPoint


def run_digital_vs_analog(harness):
    analog_point = DesignPoint(n_bits=8, lna_noise_rms=8e-6, use_cs=True, cs_m=150)
    digital_point = analog_point.with_(cs_architecture="digital")
    results = {}
    for name, point in (("analog", analog_point), ("digital", digital_point)):
        evaluation = harness.evaluator.evaluate(point)
        results[name] = {
            "power_uw": evaluation.metrics["power_uw"],
            "snr_db": evaluation.metrics["snr_db"],
            "accuracy": evaluation.metrics["accuracy"],
            "breakdown": evaluation.breakdown,
        }
    return results


def test_ablation_digital_vs_analog_cs(benchmark, harness):
    results = run_once(benchmark, run_digital_vs_analog, harness)
    print()
    for name, metrics in results.items():
        print(
            f"{name:<8} power={metrics['power_uw']:.4f} uW  "
            f"snr={metrics['snr_db']:6.2f} dB  accuracy={metrics['accuracy']:.3f}"
        )

    analog, digital = results["analog"], results["digital"]

    # The digital encoder pays full-rate conversion + MAC switching, so it
    # strictly costs more power -- but at EEG rates both are TX-dominated,
    # so the gap is small.  The framework's value is quantifying exactly
    # this: the passive encoder's advantage lives in the analog blocks and
    # grows with sample rate, not in the (shared) transmitter saving.
    assert digital["power_uw"] > analog["power_uw"]
    assert digital["power_uw"] < 1.5 * analog["power_uw"]

    # Both transmit the same compressed stream.
    assert abs(
        digital["breakdown"]["transmitter"] - analog["breakdown"]["transmitter"]
    ) < 1e-12

    # Functional sanity: both recover the signal well enough to detect.
    assert digital["accuracy"] > 0.8
    assert analog["accuracy"] > 0.8

    # Closed-form check of the full-rate penalty: the digital variant's
    # ADC-side dynamic power scales with the compression ratio.
    analog_model = chain_power(DesignPoint(n_bits=8, use_cs=True, cs_m=150))
    digital_model = chain_power(
        DesignPoint(n_bits=8, use_cs=True, cs_m=150, cs_architecture="digital")
    )
    ratio = 384 / 150
    for block in ("sample_hold", "comparator", "sar_logic"):
        measured_ratio = digital_model.blocks[block] / analog_model.blocks[block]
        assert abs(measured_ratio - ratio) < 0.05 * ratio, block
