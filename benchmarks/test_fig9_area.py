"""Fig. 9 benchmark: accuracy vs total capacitor area.

The paper's finding: the CS architecture costs **significantly more
capacitor area** than the baseline (the M-channel hold bank), the price of
its power saving.  Asserted as a median area ratio well above 1 and
non-overlapping area scales for the M values of the sweep.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig9 import analyze_fig9
from repro.power.area import chain_area
from repro.power.technology import DesignPoint


def test_fig9_area(benchmark, search_sweep):
    result = run_once(benchmark, analyze_fig9, search_sweep)
    print("\n" + result.render())
    print(f"\nmedian area ratio (cs / baseline): {result.area_ratio():.1f}x")

    # CS costs several times the baseline capacitor area.
    assert result.area_ratio() > 2.0

    # The baseline area is dominated by the DAC array and does not depend
    # on the noise sweep: its range collapses per resolution.
    base_lo, base_hi = result.area_range("baseline")
    assert base_hi <= 1.05 * max(
        chain_area(DesignPoint(n_bits=n)).units for n in (6, 7, 8)
    )

    # CS area grows with M (more hold capacitors).
    area_by_m = {}
    for evaluation in result.cs:
        area_by_m.setdefault(evaluation.point.cs_m, set()).add(
            round(evaluation.metric("area_units"), 3)
        )
    ms = sorted(area_by_m)
    if len(ms) >= 2:
        for smaller, larger in zip(ms, ms[1:]):
            assert max(area_by_m[smaller]) < min(area_by_m[larger])

    # Closed-form check of the area model at the paper's geometry: the
    # M=150 encoder adds s*C_sample + M*C_hold on top of the DAC array.
    point = DesignPoint(n_bits=8, use_cs=True, cs_m=150)
    report = chain_area(point)
    expected_cs_cap = 2 * point.cs_sample_capacitance + 150 * point.cs_hold_capacitance
    assert abs(report.cs_capacitance - expected_cs_cap) < 1e-18
