"""Table I benchmark: the framework-capability matrix, with evidence checks.

Regenerates the paper's qualitative comparison and verifies that every
capability claimed for EffiCSense is backed by an importable module of
this repository.
"""

from benchmarks.conftest import run_once
from repro.experiments.table1 import (
    TABLE1_COLUMNS,
    render_table1,
    verify_capability_evidence,
)


def test_table1_comparison(benchmark):
    table = run_once(benchmark, render_table1)
    print("\n" + table)

    # The matrix reproduces the paper's rows.
    efficsense = TABLE1_COLUMNS[-1]
    assert efficsense.name == "EffiCSense"
    assert efficsense.mixed_signal_modeling
    assert efficsense.power_modeling
    assert not efficsense.application_specific
    assert efficsense.method == "FOM/Analytical Model"

    # The other frameworks each lack something EffiCSense has.
    behavioural, fom = TABLE1_COLUMNS[0], TABLE1_COLUMNS[1]
    assert not behavioural.power_modeling
    assert not fom.mixed_signal_modeling
    assert fom.application_specific

    # Every claimed capability maps to importable code.
    evidence = verify_capability_evidence()
    assert all(evidence.values()), f"missing evidence: {evidence}"
