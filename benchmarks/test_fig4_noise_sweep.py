"""Fig. 4 benchmark: LNA input-referred-noise sweep on the baseline chain.

Regenerates the paper's demonstration sweep (sine input, noise floor
1-20 uVrms) and asserts its three published shapes:

* SNDR falls monotonically with the noise floor;
* total power falls steeply (the LNA noise bound scales as 1/vn^2) and
  flattens into the transmitter floor;
* the power distribution hands over from LNA-dominated to TX-dominated.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig4 import DEFAULT_NOISE_SWEEP_UV, render_fig4, run_fig4


def test_fig4_noise_sweep(benchmark):
    rows = run_once(benchmark, run_fig4, noise_values_uv=DEFAULT_NOISE_SWEEP_UV)
    print("\n" + render_fig4(rows))

    sndrs = [row.sndr_db for row in rows]
    powers = [row.power_uw for row in rows]

    # SNDR decreases monotonically (0.5 dB slack for FFT estimation noise).
    assert all(a >= b - 0.5 for a, b in zip(sndrs, sndrs[1:]))
    assert sndrs[0] - sndrs[-1] > 10.0

    # Power decreases monotonically and spans a large dynamic range.
    assert all(a >= b - 1e-9 for a, b in zip(powers, powers[1:]))
    assert powers[0] > 3.0 * powers[-1]

    # 1/vn^2 law of the LNA term: from 1 uV to 2 uV the LNA power drops 4x.
    lna = {row.noise_uv: row.breakdown_uw["lna"] for row in rows}
    assert lna[1.0] / lna[2.0] == 4.0 or abs(lna[1.0] / lna[2.0] - 4.0) < 0.1

    # Dominance shift: LNA rules the low-noise end, TX the high-noise end.
    assert rows[0].dominant_block() == "lna"
    assert rows[-1].dominant_block() == "transmitter"

    # At the high-noise end the power floor is the transmitter's
    # fs * N * E_bit = 4.3 uW (Table II).
    assert abs(rows[-1].breakdown_uw["transmitter"] - 4.3008) < 0.01
