"""Fig. 10 benchmark: area-constrained accuracy/power Pareto fronts.

The paper's finding: **constraining the total capacitance limits the
maximum achievable accuracy** -- tight caps exclude the CS hold-capacitor
bank, so the CS advantage only materialises when the area increase is
tolerated (e.g. on bondpad-limited dies).
"""

from benchmarks.conftest import run_once
from repro.experiments.fig10 import DEFAULT_AREA_CAPS, analyze_fig10


def test_fig10_area_constrained(benchmark, search_sweep):
    result = run_once(benchmark, analyze_fig10, search_sweep, area_caps=DEFAULT_AREA_CAPS)
    print("\n" + result.render())

    fronts = result.fronts
    assert len(fronts) == len(DEFAULT_AREA_CAPS)

    # The tightest cap must exclude the CS branch (its hold bank exceeds
    # the budget); the loosest cap must include it.
    assert not fronts[0].contains_cs()
    assert fronts[-1].contains_cs()

    # Relaxing the cap never reduces the achievable accuracy, and at
    # least one relaxation strictly improves it (the Fig. 10 trend).
    accuracies = [front.max_accuracy for front in fronts]
    assert all(a is not None for a in accuracies)
    assert all(a <= b + 1e-12 for a, b in zip(accuracies, accuracies[1:]))
    assert accuracies[-1] > accuracies[0]

    # Relaxing the cap also unlocks lower-power designs (the CS corner).
    min_powers = [front.min_power_uw for front in fronts]
    assert min_powers[-1] < min_powers[0]
