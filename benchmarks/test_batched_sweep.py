"""Batched explorer benchmark: vectorised vs scalar signal pass.

Sweeps a 256-point LNA -> S&H -> SAR baseline grid (four resolutions x 64
LNA noise levels, with the LNA band-limiting active so the per-point IIR
design cost is representative) through the real front-end chain twice:

* **scalar signal pass** -- the per-point block loop the serial executor
  runs: one ``process`` call per block per design point;
* **batched signal pass** -- :meth:`BatchedEvaluator.run_group_signals`,
  one stacked ``process_batch`` pass per compiled group.

The timed region is the signal-processing pass itself -- the part of an
evaluation the batched engine vectorises.  Chain construction, power
collection and metric scoring are per-point Python that is *identical in
both executors* (the batched path literally calls the same
``build_point_chain``/``score_output``), so including them would only
dilute the measurement with work the engine does not touch; their
end-to-end effect is reported (and sanity-checked) separately below.
This mirrors ``test_parallel_sweep.py``, which isolates the dispatch
machinery with a delay evaluator for the same reason.

Asserts the acceptance contract: the batched pass is >= 3x faster than
the scalar pass over the 256 points, outputs are bit-identical, and the
full ``explore()`` sweep (compile + pass + scoring) also wins end to end.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.batch import BatchCompiler, BatchedEvaluator
from repro.core.block import SimulationContext
from repro.core.explorer import DesignSpaceExplorer, FrontEndEvaluator
from repro.power.technology import DesignPoint

#: Acceptance threshold for the vectorised signal pass.
MIN_SPEEDUP = 3.0

#: Sanity floor for the whole sweep (dominated by per-point scoring and
#: chain construction that both executors share, so far below the pass
#: ratio by construction).
MIN_END_TO_END_SPEEDUP = 1.3

#: Timing repetitions; best-of keeps single-core CI scheduler noise out.
REPS = 5

F_SAMPLE = 2.1 * 256


def sweep_points() -> list[DesignPoint]:
    """256-point baseline grid: 4 resolutions x 64 LNA noise levels.

    ``lna_bw_ratio=1.0`` puts BW_LNA below simulation Nyquist so the
    LNA's single-pole IIR is active -- the scalar path then designs the
    filter per point while the batched kernel designs it once per group.
    """
    return [
        DesignPoint(n_bits=n_bits, lna_noise_rms=noise, lna_bw_ratio=1.0)
        for n_bits in (8, 10, 12, 14)
        for noise in np.linspace(1e-6, 30e-6, 64)
    ]


def make_evaluator() -> FrontEndEvaluator:
    records = np.random.default_rng(1).normal(0.0, 20e-6, size=(1, 64))
    return FrontEndEvaluator(records, None, F_SAMPLE, seed=3)


def best_of(fn, reps: int = REPS) -> tuple[float, object]:
    fn()  # warm caches (imports, filter design, allocator)
    best, result = float("inf"), None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batched_signal_pass_speedup_and_bit_identity():
    evaluator = make_evaluator()
    points = sweep_points()
    batches, fallback = BatchCompiler(evaluator).compile(list(enumerate(points)))
    assert not fallback, f"{len(fallback)} point(s) unexpectedly fell back"
    members = [member for batch in batches for member in batch.members]
    assert len(members) == 256
    source = evaluator.source_signal()
    batched = BatchedEvaluator(evaluator)

    def scalar_pass():
        outputs = []
        for member in members:
            member.chain.reset()
            ctx = SimulationContext(seed=member.run_seed, design_point=member.point)
            signal = source
            for block in member.chain.blocks:
                signal = block.process(signal, ctx)
            outputs.append(signal)
        return outputs

    def batched_pass():
        outputs = []
        for batch in batches:
            for start in range(0, len(batch.members), batched.max_group_points):
                group = batch.members[start : start + batched.max_group_points]
                stacked = batched.run_group_signals(group)
                outputs.extend(stacked.row(i) for i in range(len(group)))
        return outputs

    scalar_s, scalar_out = best_of(scalar_pass)
    batched_s, batched_out = best_of(batched_pass)

    for expected, actual in zip(scalar_out, batched_out):
        assert np.array_equal(expected.data, actual.data)  # bit-identical

    speedup = scalar_s / batched_s
    print(
        f"\n{len(members)} points signal pass: scalar {scalar_s * 1e3:.0f} ms, "
        f"batched {batched_s * 1e3:.0f} ms, {speedup:.2f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched signal pass only {speedup:.2f}x faster (need >= {MIN_SPEEDUP}x)"
    )


def test_batched_sweep_end_to_end():
    """Full explore() comparison: compile + pass + scoring, both executors.

    The shared per-point work (chain construction, power collection,
    metric scoring) caps this ratio well below the pass speedup; the
    assertion is a regression floor, the print is the honest number.
    """
    evaluator = make_evaluator()
    points = sweep_points()
    explorer = DesignSpaceExplorer(evaluator)

    serial_s, serial = best_of(lambda: explorer.explore(points, executor="serial"), 3)
    batched_s, batched = best_of(lambda: explorer.explore(points, executor="batched"), 3)

    assert len(serial) == len(batched) == len(points)
    for expected, actual in zip(serial, batched):
        assert expected.point.describe() == actual.point.describe()
        assert expected.metrics == actual.metrics  # bit-identical, same order

    speedup = serial_s / batched_s
    print(
        f"\n{len(points)} points end-to-end: serial {serial_s * 1e3:.0f} ms, "
        f"batched {batched_s * 1e3:.0f} ms, {speedup:.2f}x"
    )
    assert speedup >= MIN_END_TO_END_SPEEDUP, (
        f"batched sweep only {speedup:.2f}x faster (need >= {MIN_END_TO_END_SPEEDUP}x)"
    )
