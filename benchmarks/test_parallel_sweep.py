"""Parallel explorer benchmark: serial vs process-pool wall-clock.

Sweeps the Fig. 7 *small*-scale grid (48 design points) with a toy
evaluator whose per-point cost is a fixed delay, standing in for the
full-corpus simulation.  A delay-dominated evaluator is used (rather than
the real one) so the benchmark isolates the dispatch/reassembly machinery
and demonstrates overlap even on single-core CI runners; the real
evaluator's bit-identity across backends is covered by the unit tests.

Asserts the acceptance contract: at 4 workers the parallel sweep is
> 1.5x faster than serial, and the results are bit-identical in grid
order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.explorer import DesignSpaceExplorer
from repro.core.results import Evaluation
from repro.experiments.runner import SCALES
from repro.experiments.table3 import paper_search_space
from repro.util.rng import derive_seed

#: Per-point simulated evaluation cost, seconds.
DELAY_S = 0.05

#: Acceptance threshold for the 4-worker speedup.
MIN_SPEEDUP = 1.5


@dataclass(frozen=True)
class DelayedToyEvaluator:
    """Picklable stand-in evaluator: fixed delay + seed-derived metrics."""

    delay_s: float = DELAY_S

    def fingerprint(self) -> str:
        return f"delayed-toy:{self.delay_s}"

    def __call__(self, point) -> Evaluation:
        time.sleep(self.delay_s)
        seed = derive_seed(0, point.describe())
        return Evaluation(
            point=point,
            metrics={
                "power_uw": (seed % 10_000) / 1_000.0,
                "accuracy": 0.9 + (seed % 97) / 1_000.0,
            },
        )


def small_grid():
    scale = SCALES["small"]
    return paper_search_space(
        noise_values_uv=scale.noise_values_uv,
        n_bits_values=scale.n_bits_values,
        cs_m_values=scale.cs_m_values,
    )


def test_parallel_speedup_and_bit_identity():
    explorer = DesignSpaceExplorer(DelayedToyEvaluator())
    space = small_grid()

    start = time.perf_counter()
    serial = explorer.explore(space, name="serial")
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = explorer.explore(space, name="parallel", executor="process", n_workers=4)
    parallel_s = time.perf_counter() - start

    assert len(serial) == len(parallel) == space.size
    for expected, actual in zip(serial, parallel):
        assert expected.point.describe() == actual.point.describe()
        assert expected.metrics == actual.metrics  # bit-identical, same order

    speedup = serial_s / parallel_s
    print(
        f"\n{len(serial)} points x {DELAY_S * 1000:.0f} ms: "
        f"serial {serial_s:.2f} s, process(4) {parallel_s:.2f} s, {speedup:.2f}x"
    )
    assert speedup > MIN_SPEEDUP, (
        f"4-worker sweep only {speedup:.2f}x faster (need > {MIN_SPEEDUP}x)"
    )


def test_parallel_overhead_report(benchmark):
    """pytest-benchmark record of the 4-worker sweep (reporting only)."""
    explorer = DesignSpaceExplorer(DelayedToyEvaluator())
    space = small_grid()
    result = benchmark.pedantic(
        lambda: explorer.explore(space, executor="process", n_workers=4),
        rounds=1,
        iterations=1,
    )
    assert len(result) == space.size


#: Disabled-telemetry overhead tolerance, seconds per design point.  The
#: no-op hooks cost well under a microsecond each; the bound is generous
#: only to absorb scheduler noise on loaded CI runners.
MAX_DISABLED_TELEMETRY_OVERHEAD_S = 0.002


def test_disabled_telemetry_adds_no_measurable_overhead():
    """An unprofiled sweep must not pay for the instrumentation hooks.

    Compares the explorer's per-point wall time (zero-delay evaluator, so
    pure machinery) against a bare evaluation loop; the difference bounds
    everything `explore` adds on top -- including every disabled-telemetry
    hook on the hot path.
    """
    evaluator = DelayedToyEvaluator(delay_s=0.0)
    explorer = DesignSpaceExplorer(evaluator)
    space = small_grid()
    points = list(space.grid())

    # Warm-up: JIT-free Python, but populates caches (describe(), imports).
    explorer.explore(space)
    for point in points:
        evaluator(point)

    n_rounds = 5
    start = time.perf_counter()
    for _ in range(n_rounds):
        for point in points:
            evaluator(point)
    bare_s = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(n_rounds):
        explorer.explore(space)
    explored_s = time.perf_counter() - start

    per_point = (explored_s - bare_s) / (n_rounds * space.size)
    print(
        f"\nexplore machinery overhead: {per_point * 1e6:.1f} us/point "
        f"(bare {bare_s:.3f} s, explore {explored_s:.3f} s, "
        f"{n_rounds} x {space.size} points)"
    )
    assert per_point < MAX_DISABLED_TELEMETRY_OVERHEAD_S, (
        f"explore adds {per_point * 1e3:.3f} ms/point with telemetry disabled "
        f"(bound: {MAX_DISABLED_TELEMETRY_OVERHEAD_S * 1e3:.1f} ms)"
    )
