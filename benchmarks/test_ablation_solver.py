"""Ablation + micro-benchmark: reconstruction solver choice.

Benchmarks the three solvers on identical CS instances.  Batched FISTA is
the production choice (it carries every dataset sweep); this benchmark
verifies it is both faster per frame than per-frame OMP and at least as
accurate as ISTA at an equal iteration budget -- and it records the
absolute throughput that makes Python-scale sweeps feasible.
"""

import time

import numpy as np

from repro.cs.charge_sharing import ChargeSharingConfig, ChargeSharingEncoder
from repro.cs.dictionaries import dct_basis
from repro.cs.matrices import srbm_balanced
from repro.cs.reconstruction import Reconstructor
from repro.metrics.quality import nmse


def make_problem(harness, n_frames=48):
    frames = harness.records.reshape(-1, 384)[:n_frames]
    matrix = srbm_balanced(150, 384, 2, seed=3)
    encoder = ChargeSharingEncoder(
        matrix, ChargeSharingConfig(c_sample=2e-15, c_hold=16e-15, kt=0.0), seed=1
    )
    return frames, encoder, encoder.encode(frames)


def test_ablation_solver(benchmark, harness):
    frames, encoder, measurements = make_problem(harness)
    basis = dct_basis(384)
    phi_eff = encoder.phi_effective

    solvers = {
        "fista": Reconstructor(basis=basis, method="fista", lam_rel=0.002, n_iter=200),
        "ista": Reconstructor(basis=basis, method="ista", lam_rel=0.002, n_iter=200),
        "omp": Reconstructor(basis=basis, method="omp", sparsity=40),
    }

    quality = {}
    runtime = {}
    for name, reconstructor in solvers.items():
        start = time.perf_counter()
        recovered = reconstructor.recover(phi_eff, measurements)
        runtime[name] = time.perf_counter() - start
        quality[name] = nmse(frames, recovered)

    # The timed benchmark measures the production solver (batched FISTA).
    production = Reconstructor(basis=basis, method="fista", lam_rel=0.002, n_iter=200)
    benchmark.pedantic(
        production.recover, args=(phi_eff, measurements), rounds=3, iterations=1
    )

    print()
    for name in solvers:
        print(
            f"{name:<8} NMSE={quality[name]:.4f}  wall={runtime[name] * 1e3:8.1f} ms "
            f"({runtime[name] / frames.shape[0] * 1e3:6.2f} ms/frame)"
        )

    # FISTA beats ISTA at equal budget (Nesterov acceleration).
    assert quality["fista"] <= quality["ista"] * 1.05
    # Batched FISTA is far cheaper per frame than per-frame OMP.
    assert runtime["fista"] < runtime["omp"]
    # And all solvers produce sane reconstructions on this easy instance.
    assert all(np.isfinite(v) and v < 1.0 for v in quality.values())
