"""Ablation: the charge-sharing capacitor ratio C_hold / C_sample.

DESIGN.md calls the ratio out as the key electrical degree of freedom of
the passive encoder (paper Eq. 1): a larger ratio flattens the
accumulation weights (better-conditioned effective matrix) but shrinks the
per-sample gain.  This ablation quantifies both effects and checks that
the default (ratio 8) sits in the flat quality region.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.cs.charge_sharing import ChargeSharingConfig, ChargeSharingEncoder
from repro.cs.diagnostics import weight_dynamic_range
from repro.cs.dictionaries import dct_basis
from repro.cs.matrices import srbm_balanced
from repro.cs.reconstruction import Reconstructor
from repro.metrics.quality import nmse


def run_cap_ratio_ablation(harness):
    """Reconstruction NMSE and weight dynamic range vs capacitor ratio."""
    frames = harness.records[:16].reshape(-1, 384)[:64]
    matrix = srbm_balanced(150, 384, 2, seed=3)
    basis = dct_basis(384)
    results = {}
    for ratio in (1.0, 2.0, 4.0, 8.0, 16.0, 32.0):
        config = ChargeSharingConfig(
            c_sample=2e-15, c_hold=ratio * 2e-15, kt=0.0
        )
        encoder = ChargeSharingEncoder(matrix, config, seed=1)
        measurements = encoder.encode(frames)
        reconstructor = Reconstructor(basis=basis, method="fista", lam_rel=0.002, n_iter=200)
        recovered = reconstructor.recover(encoder.phi_effective, measurements)
        results[ratio] = {
            "nmse": nmse(frames, recovered),
            "dynamic_range": weight_dynamic_range(encoder.phi_effective),
        }
    return results


def test_ablation_cap_ratio(benchmark, harness):
    results = run_once(benchmark, run_cap_ratio_ablation, harness)
    print()
    for ratio, metrics in results.items():
        print(
            f"ratio={ratio:5.1f}  weight dyn range={metrics['dynamic_range']:8.1f}  "
            f"NMSE={metrics['nmse']:.4f}"
        )

    ratios = sorted(results)
    # Weight dynamic range shrinks monotonically with the ratio (Eq. 1:
    # retention b -> 1 flattens the exponential weighting).
    drs = [results[r]["dynamic_range"] for r in ratios]
    assert all(a >= b - 1e-9 for a, b in zip(drs, drs[1:]))

    # Equal capacitors (ratio 1) give a far wider weight spread: the
    # paper's Eq. 1 halves the stored charge per share (2^(degree-1)
    # range) while ratio 8 only decays by (9/8) per share.
    assert results[1.0]["dynamic_range"] > 10 * results[8.0]["dynamic_range"]

    # Reconstruction quality: the default ratio 8 must clearly beat
    # ratio 1 and sit within 2x of the best NMSE in the sweep.
    best_nmse = min(m["nmse"] for m in results.values())
    assert results[8.0]["nmse"] < results[1.0]["nmse"]
    assert results[8.0]["nmse"] <= 2.0 * best_nmse
    assert np.isfinite(best_nmse)
