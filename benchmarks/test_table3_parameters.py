"""Table III benchmark: technology constants and the search space.

Renders both halves of Table III and checks the derived clocking rules
and the search-space enumeration (24 baseline + 72 CS grid points at full
paper density).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.table3 import paper_search_space, render_table3, space_summary
from repro.power.technology import GPDK045, DesignPoint


def test_table3_parameters(benchmark):
    table = run_once(benchmark, render_table3)
    print("\n" + table)

    # Technology constants exactly as published.
    assert GPDK045.c_logic == pytest.approx(1e-15)
    assert GPDK045.cu_min == pytest.approx(1e-15)
    assert GPDK045.i_leak == pytest.approx(1e-12)
    assert GPDK045.e_bit == pytest.approx(1e-9)
    assert GPDK045.v_t == pytest.approx(25.27e-3)
    assert GPDK045.gm_over_id == pytest.approx(20.0)

    # Clocking relations of the design half.
    point = DesignPoint()
    assert point.f_sample == pytest.approx(2.1 * 256)
    assert point.f_clk == pytest.approx((point.n_bits + 1) * point.f_sample)
    assert point.bw_lna == pytest.approx(3 * 256)
    assert point.v_dd == point.v_fs == point.v_ref == 2.0

    # The full search space enumerates as in the paper.
    summary = space_summary()
    assert summary["baseline_points"] == 24
    assert summary["cs_points"] == 72
    assert summary["total_points"] == 96

    # Every grid point is a valid design point.
    points = list(paper_search_space().grid())
    assert len(points) == 96
    assert sum(p.use_cs for p in points) == 72
