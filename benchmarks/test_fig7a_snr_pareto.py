"""Fig. 7 a) benchmark: SNR-vs-power Pareto fronts of both architectures.

The paper's reading: **the CS front-end wins at the low-SNR / low-power
end, the classical chain wins at high SNR** -- the passive encoder's
reconstruction quality saturates while the baseline keeps improving with
more power.  Asserted here as:

* the CS front extends to lower power than any baseline point;
* the baseline front reaches higher SNR than any CS point;
* both fronts are monotone (more power -> at least as much SNR).
"""

from benchmarks.conftest import run_once
from repro.experiments.fig7 import analyze_fig7, max_quality, render_front


def test_fig7a_snr_pareto(benchmark, search_sweep):
    result = run_once(benchmark, analyze_fig7, search_sweep)
    print("\nbaseline SNR front:\n" + render_front(result.snr_front_baseline, "snr_db"))
    print("\ncs SNR front:\n" + render_front(result.snr_front_cs, "snr_db"))

    assert result.snr_front_baseline, "baseline front is empty"
    assert result.snr_front_cs, "CS front is empty"

    # CS reaches power levels below the baseline's minimum (compression
    # cuts the dominant TX term).
    min_cs_power = min(e.metric("power_uw") for e in result.snr_front_cs)
    min_baseline_power = min(e.metric("power_uw") for e in result.snr_front_baseline)
    assert min_cs_power < min_baseline_power

    # The classical chain wins at the high-SNR end (reconstruction
    # saturates the CS quality).
    assert max_quality(result.snr_front_baseline, "snr_db") > max_quality(
        result.snr_front_cs, "snr_db"
    )

    # Pareto fronts are monotone by construction: sorted by power, SNR
    # must be non-decreasing.
    for front in (result.snr_front_baseline, result.snr_front_cs):
        snrs = [e.metric("snr_db") for e in front]
        assert all(a <= b + 1e-9 for a, b in zip(snrs, snrs[1:]))

    # Crossover: at the lowest CS power there is NO baseline point at all,
    # i.e. CS offers operating points the classical system cannot reach.
    baseline_powers = [e.metric("power_uw") for e in result.baseline]
    assert min_cs_power < min(baseline_powers)
