"""Table II benchmark: the per-block power models, evaluated.

Evaluates every Table II equation at the Table III operating point for
both architectures and asserts the structural facts the paper's analysis
rests on: transmitter+LNA dominance of the baseline budget, the CS
encoder's modest digital adder, and the microwatt totals of the two
reported optima (8.8 uW baseline / 2.44 uW CS, reproduced within a
factor-level tolerance -- our substrate shares the equations but not the
authors' exact sweep corners).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.table2 import (
    power_model_rows,
    reference_operating_points,
    render_table2,
)
from repro.util.constants import MICRO


def test_table2_power_models(benchmark):
    table = run_once(benchmark, render_table2)
    print("\n" + table)

    points = reference_operating_points()
    baseline_rows = {r.block: r.power_w for r in power_model_rows(points["baseline"])}
    cs_rows = {r.block: r.power_w for r in power_model_rows(points["cs"])}

    # Baseline: TX + LNA dominate (paper Fig. 4's reading of Table II).
    baseline_total = sum(baseline_rows.values())
    assert (baseline_rows["transmitter"] + baseline_rows["lna"]) > 0.9 * baseline_total

    # Paper scale: the reference baseline corner sits at ~8.8 uW.
    assert baseline_total / MICRO == pytest.approx(8.8, rel=0.25)

    # CS reference corner sits at ~2.44 uW -> several-fold saving.
    cs_total = sum(cs_rows.values())
    assert cs_total / MICRO == pytest.approx(2.44, rel=0.4)
    assert baseline_total / cs_total > 2.0

    # The CS encoder adds digital power, but only marginally compared to
    # the TX + LNA savings (paper Section IV).
    tx_lna_saving = (
        baseline_rows["transmitter"]
        - cs_rows["transmitter"]
        + baseline_rows["lna"]
        - cs_rows["lna"]
    )
    assert cs_rows["cs_encoder"] < 0.5 * tx_lna_saving

    # Every model returns non-negative power.
    assert all(v >= 0 for v in baseline_rows.values())
    assert all(v >= 0 for v in cs_rows.values())
